//! Ablation study of the scheduler optimisations the paper singles out
//! (§II-C): steal-request **aggregation**, the **ready-list** (graph mode)
//! acceleration and write-only **renaming** (WAR/WAW elimination) — plus
//! the adaptive-loop grain and the **victim-selection** sweep (uniform ×
//! hierarchical × locality-first over the queue layers, with the
//! same-node-steal locality property asserted on a modelled 2-node
//! machine), and the **injection subsystem** sweep: scope-via-submit
//! checksums across every queue/steal policy plus the own-lane-drain
//! dominance property of the sharded inject lanes.
//!
//! Three parts:
//! 1. real-machine ablations on this host (multi-worker, 1 core —
//!    correctness-preserving, contention-visible);
//! 2. a deterministic data-flow probe (ready-set width of the war-chain
//!    workload straight from the versioned dependency engine);
//! 3. simulator ablations on the 48-core model, where the idle-thief
//!    population that aggregation helps with actually exists.
//!
//! Usage: `ablation`

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use xkaapi_bench::{
    busy_work, measure_ns, print_table, steal_heavy_workload, SchedPolicy, VictimPolicy,
};
use xkaapi_core::dataflow::DataflowEngine;
use xkaapi_core::{PromotionPolicy, RenamePolicy, Runtime, Shared, Topology};
use xkaapi_linalg::{cholesky_seq, cholesky_xkaapi, RecordedCholesky, TiledMatrix};
use xkaapi_sim::{simulate_dag, DagPolicy, Platform, SimTask, TaskDag};

/// One mixed data-flow workload every scheduler policy must agree on:
/// 16 exclusive chains of length 25 plus a read fan-in. Returns the final
/// checksum (identical across policies by the sequential semantics).
fn policy_workload(rt: &Runtime) -> u64 {
    let cells: Vec<Shared<u64>> = (0..16).map(|_| Shared::new(1)).collect();
    rt.scope(|ctx| {
        for round in 0..25u64 {
            for (i, c) in cells.iter().enumerate() {
                let cw = c.clone();
                ctx.spawn([c.exclusive()], move |t| {
                    *t.write(&cw) += round + i as u64;
                });
            }
        }
    });
    cells.iter().map(|c| *c.get()).sum()
}

/// The identical workload spawned through the attribute-carrying task
/// builder at default attributes (`ctx.task().…spawn`). Under `Priority`
/// defaults and no affinity the builder lowers to exactly the legacy spawn
/// path, so its checksum must equal [`policy_workload`]'s on every
/// queue × steal policy — the ISSUE 5 acceptance gate.
fn policy_workload_builder(rt: &Runtime) -> u64 {
    let cells: Vec<Shared<u64>> = (0..16).map(|_| Shared::new(1)).collect();
    rt.scope(|ctx| {
        for round in 0..25u64 {
            for (i, c) in cells.iter().enumerate() {
                let cw = c.clone();
                ctx.task().exclusive(c).spawn(move |t| {
                    *t.write(&cw) += round + i as u64;
                });
            }
        }
    });
    cells.iter().map(|c| *c.get()).sum()
}

/// The identical workload again, this time with non-default attributes on
/// every spawn (alternating High/Low bands + `Affinity::Auto`), so each
/// task takes the `#[cold]` attributed lowering and activates the banded
/// side structures. Attributes are scheduling hints, never semantics: the
/// checksum must equal the defaulted runs' — and the time delta against
/// [`policy_workload_builder`] is the measured cost of carrying
/// attributes (the PR 6 defaulted-vs-attributed ablation).
fn policy_workload_attributed(rt: &Runtime) -> u64 {
    use xkaapi_core::{Affinity, Priority};
    let cells: Vec<Shared<u64>> = (0..16).map(|_| Shared::new(1)).collect();
    rt.scope(|ctx| {
        for round in 0..25u64 {
            for (i, c) in cells.iter().enumerate() {
                let cw = c.clone();
                ctx.task()
                    .exclusive(c)
                    .priority(if i % 2 == 0 {
                        Priority::High
                    } else {
                        Priority::Low
                    })
                    .affinity(Affinity::Auto)
                    .spawn(move |t| {
                        *t.write(&cw) += round + i as u64;
                    });
            }
        }
    });
    cells.iter().map(|c| *c.get()).sum()
}

/// The war-chain workload: `rounds` repeated whole-object overwrites of one
/// renameable handle, each feeding `readers` readers. Renaming eliminates
/// the WAR edges from round `r`'s readers to round `r+1`'s writer, so the
/// rounds pipeline. Returns a checksum that must be identical under every
/// renaming setting (readers accumulate order-independently).
fn war_chain(rt: &Runtime, rounds: u64, readers: usize, len: usize) -> u64 {
    let h = Shared::renameable_with(vec![0u64; len], move || vec![0u64; len]);
    let sum = AtomicU64::new(0);
    rt.scope(|ctx| {
        let sum = &sum;
        for round in 0..rounds {
            let hw = h.clone();
            ctx.spawn([h.write()], move |t| {
                let mut g = t.write(&hw);
                for (i, x) in g.iter_mut().enumerate() {
                    *x = round * 31 + i as u64;
                }
            });
            for _ in 0..readers {
                let hr = h.clone();
                ctx.spawn([h.read()], move |t| {
                    let v: u64 = t.read(&hr).iter().sum();
                    sum.fetch_add(v, Ordering::Relaxed);
                });
            }
        }
    });
    let tail: u64 = h.get().iter().sum();
    sum.load(Ordering::Relaxed).wrapping_add(tail)
}

/// The policy workload driven through the non-blocking front door instead
/// of scope: 4 submitter threads push root jobs (each a self-contained
/// data-flow chain over its own cells) through [`Runtime::submit`] and
/// join the handles. The checksum is schedule-independent, so it must be
/// identical across every queue/steal policy — and equal to what the same
/// per-job chains sum to under scope.
fn submit_workload(rt: &Arc<Runtime>) -> u64 {
    let submitters = 4usize;
    let per = 25u64;
    let threads: Vec<_> = (0..submitters as u64)
        .map(|s| {
            let rt = Arc::clone(rt);
            std::thread::spawn(move || {
                let handles: Vec<_> = (0..per)
                    .map(|i| {
                        rt.submit(move |ctx| {
                            let cell = Shared::new(1u64);
                            for round in 0..8u64 {
                                let cw = cell.clone();
                                ctx.spawn([cell.exclusive()], move |t| {
                                    *t.write(&cw) += busy_work(s * 31 + i + round, 200) & 0xff;
                                });
                            }
                            ctx.sync();
                            *cell.get()
                        })
                        .expect("Block admission never rejects")
                    })
                    .collect();
                handles.into_iter().map(|h| h.wait()).sum::<u64>()
            })
        })
        .collect();
    threads.into_iter().map(|t| t.join().unwrap()).sum()
}

fn main() {
    println!("# Ablations: scheduler policy matrix, aggregation, ready-list & renaming");

    // --- the engine's policy matrix: one enum flips queue & steal layer --
    // Each configuration runs the workload twice: once through the legacy
    // `Ctx::spawn` front door and once through the attribute-carrying
    // builder at default attributes. The two must agree with each other
    // and across every queue × steal policy (ISSUE 5 acceptance gate).
    let mut rows = Vec::new();
    let mut checksums = Vec::new();
    for pol in SchedPolicy::ALL {
        let rt = pol.build_runtime(4);
        let mut sum = 0;
        let t = measure_ns(5, || sum = policy_workload(&rt));
        let built = policy_workload_builder(&rt);
        assert_eq!(
            sum,
            built,
            "builder-vs-legacy checksum mismatch under {}",
            pol.label()
        );
        checksums.push(sum);
        let s = rt.stats();
        rows.push(vec![
            pol.label().into(),
            format!("{}/{}", rt.queue_name(), rt.steal_policy_name()),
            format!("{:.2}", t as f64 / 1e6),
            s.tasks_executed_stolen.to_string(),
            s.combine_served.to_string(),
            format!("{sum} (= builder)"),
        ]);
    }
    assert!(
        checksums.iter().all(|&c| c == checksums[0]),
        "scheduler policies disagree on the workload result: {checksums:?}"
    );
    print_table(
        "Engine policy matrix: 16 chains x 25 exclusive writers, 4 workers \
         (identical checksums, legacy spawn == builder)",
        &[
            "policy",
            "queue/steal",
            "time (ms)",
            "stolen",
            "combine served",
            "checksum",
        ],
        &rows,
    );

    // --- the spawn fast path: defaulted vs attributed lowering -----------
    // The same chains workload through the builder, once at default
    // attributes (monomorphized `#[inline]` path, banded structures stay
    // dormant) and once fully attributed (`#[cold]` path, bands + Auto
    // affinity active). Identical checksums are asserted; the time gap is
    // what attribute-carrying actually costs per configuration, and the
    // `tasks_with_attrs` counter proves which path ran.
    let mut rows = Vec::new();
    for pol in SchedPolicy::ALL {
        let rt = pol.build_runtime(4);
        let mut fast = 0;
        let t_fast = measure_ns(5, || fast = policy_workload_builder(&rt));
        let fast_attr_tasks = rt.stats().tasks_with_attrs;
        assert_eq!(
            fast_attr_tasks,
            0,
            "defaulted builder spawns took the attributed path under {}",
            pol.label()
        );
        let mut slow = 0;
        let t_slow = measure_ns(5, || slow = policy_workload_attributed(&rt));
        assert_eq!(
            fast,
            slow,
            "attributes changed the workload result under {}",
            pol.label()
        );
        let slow_attr_tasks = rt.stats().tasks_with_attrs;
        assert!(
            slow_attr_tasks >= 16 * 25,
            "attributed spawns must be counted under {} (got {slow_attr_tasks})",
            pol.label()
        );
        rows.push(vec![
            pol.label().into(),
            format!("{:.2}", t_fast as f64 / 1e6),
            format!("{:.2}", t_slow as f64 / 1e6),
            format!("{:+.1}%", (t_slow as f64 / t_fast as f64 - 1.0) * 100.0),
            slow_attr_tasks.to_string(),
        ]);
    }
    print_table(
        "Spawn lowering: defaulted (#[inline]) vs attributed (#[cold]) builder, \
         4 workers (identical checksums)",
        &[
            "policy",
            "defaulted (ms)",
            "attributed (ms)",
            "delta",
            "tasks_with_attrs",
        ],
        &rows,
    );

    // --- injection subsystem: submit-path checksums across policies ------
    // scope is now submit + wait, so the matrix above already runs through
    // the inject lanes; this sweep drives the same engine through the
    // *non-blocking* front door (4 concurrent submitters, join handles)
    // and must agree across every queue/steal policy too.
    let mut rows = Vec::new();
    let mut checksums = Vec::new();
    for pol in SchedPolicy::ALL {
        let rt = Arc::new(pol.build_runtime(4));
        let mut sum = 0;
        let t = measure_ns(3, || sum = submit_workload(&rt));
        checksums.push(sum);
        let s = rt.stats();
        rows.push(vec![
            pol.label().into(),
            format!("{:.2}", t as f64 / 1e6),
            s.jobs_submitted.to_string(),
            (s.inject_own_lane + s.inject_remote_lane).to_string(),
            sum.to_string(),
        ]);
    }
    assert!(
        checksums.iter().all(|&c| c == checksums[0]),
        "submit-path checksums disagree across scheduler policies: {checksums:?}"
    );
    print_table(
        "Injection: 4 submitters x 25 root jobs via Runtime::submit, 4 workers \
         (identical checksums)",
        &[
            "policy",
            "time (ms)",
            "submitted",
            "lane drains",
            "checksum",
        ],
        &rows,
    );

    // --- injection locality: per-lane drains on a modelled 2-node machine -
    // 8 workers / 2 nodes / 2 inject lanes, 4 submitter threads hashed
    // across the lanes, jobs heavy enough that a backlog builds: workers
    // visit their own node's lane first, so own-lane drains must dominate
    // remote-lane drains (the injection-side locality property, the
    // analogue of the same-node-steal assertion below).
    {
        let vp_workers = 8usize;
        let rt = Arc::new(
            Runtime::builder()
                .workers(vp_workers)
                .topology(Topology::two_level(vp_workers, 4))
                .max_pending(100_000)
                .build(),
        );
        let flood = |jobs_per_submitter: u64| {
            let threads: Vec<_> = (0..4u64)
                .map(|s| {
                    let rt = Arc::clone(&rt);
                    std::thread::spawn(move || {
                        let handles: Vec<_> = (0..jobs_per_submitter)
                            .map(|i| {
                                rt.submit(move |_ctx| busy_work(s * 7919 + i, 4000))
                                    .expect("Block admission never rejects")
                            })
                            .collect();
                        let mut joined = 0usize;
                        for h in handles {
                            h.wait();
                            joined += 1;
                        }
                        joined
                    })
                })
                .collect();
            threads
                .into_iter()
                .map(|t| t.join().unwrap())
                .sum::<usize>()
        };
        // On a time-sliced 1-core host the OS can starve one node's
        // workers for a whole round, which degenerates the split to an
        // exact lane-total tie — accumulate rounds until both nodes'
        // workers participated and the strict dominance shows (the same
        // accumulate-until-solid-sample treatment the steal-locality
        // assertions below get).
        let mut joined = 0usize;
        for _round in 0..20 {
            joined += flood(1500);
            let s = rt.stats();
            if s.inject_own_lane > s.inject_remote_lane {
                break;
            }
        }
        assert_eq!(joined % 6000, 0);
        let s = rt.stats();
        let lanes = rt.inject_lane_stats();
        assert_eq!(lanes.len(), 2, "2 modelled nodes must shard into 2 lanes");
        assert_eq!(
            lanes.iter().map(|l| l.drained).sum::<u64>(),
            s.inject_own_lane + s.inject_remote_lane,
            "per-lane drains must reconcile with the worker-side counters"
        );
        assert!(
            s.inject_own_lane > s.inject_remote_lane,
            "workers must drain their own node's lane more often than remote \
             lanes (own {} vs remote {})",
            s.inject_own_lane,
            s.inject_remote_lane
        );
        print_table(
            &format!(
                "Injection locality: {joined} submitted jobs, 8 workers on 2 modelled nodes \
                 (asserted)"
            ),
            &["lane", "submitted", "drained"],
            &lanes
                .iter()
                .enumerate()
                .map(|(n, l)| {
                    vec![
                        format!("node {n}"),
                        l.submitted.to_string(),
                        l.drained.to_string(),
                    ]
                })
                .chain(std::iter::once(vec![
                    "own/remote drains".into(),
                    s.inject_own_lane.to_string(),
                    s.inject_remote_lane.to_string(),
                ]))
                .collect::<Vec<_>>(),
        );
    }

    // --- victim-selection sweep: queue layers × victim policies on a ------
    // modelled 2-node machine (8 workers, 4 per node). Victim selection is
    // orthogonal to the queue layer, so centralized queues sweep it too;
    // the steal-locality counters show where the grabs came from.
    let vp_workers = 8usize;
    let two_node = || Topology::two_level(vp_workers, 4);
    let mut rows = Vec::new();
    let mut checksums = Vec::new();
    for queue in [
        SchedPolicy::DistributedAggregated,
        SchedPolicy::CentralOmp,
        SchedPolicy::CentralQuark,
    ] {
        for victim in VictimPolicy::ALL {
            let rt = queue.build_runtime_with(vp_workers, victim, two_node());
            let mut sum = 0;
            let t = measure_ns(3, || sum = steal_heavy_workload(&rt));
            checksums.push(sum);
            // Accumulate steals beyond the timed rounds so the locality
            // counters show a real sample, not 3-round noise. Centralized
            // queues are skipped: their workers drain the shared pool
            // instead of stealing, so the counters legitimately stay ~0.
            if queue == SchedPolicy::DistributedAggregated {
                for _ in 0..300 {
                    let s = rt.stats();
                    if s.steals_local_node + s.steals_remote_node >= 100 {
                        break;
                    }
                    assert_eq!(
                        steal_heavy_workload(&rt),
                        sum,
                        "checksum drifted across rounds"
                    );
                }
            }
            let s = rt.stats();
            rows.push(vec![
                queue.label().into(),
                victim.label().into(),
                format!("{:.2}", t as f64 / 1e6),
                s.steals_local_node.to_string(),
                s.steals_remote_node.to_string(),
                s.victim_escalations.to_string(),
                sum.to_string(),
            ]);
        }
    }
    assert!(
        checksums.iter().all(|&c| c == checksums[0]),
        "victim policies disagree on the workload result: {checksums:?}"
    );
    print_table(
        "Victim-policy sweep: 3 queue layers x 3 victim policies, 8 workers on 2 modelled nodes \
         (identical checksums)",
        &[
            "queue layer",
            "victim policy",
            "time (ms)",
            "local steals",
            "remote steals",
            "escalations",
            "checksum",
        ],
        &rows,
    );

    // --- locality property: on the 2-node model, hierarchical victim ------
    // selection must land strictly more same-node steals than uniform.
    // Stats accumulate across rounds until both policies have a solid
    // sample, washing out scheduling noise.
    let accumulate = |victim: VictimPolicy| {
        let rt =
            SchedPolicy::DistributedAggregated.build_runtime_with(vp_workers, victim, two_node());
        for _ in 0..2000 {
            steal_heavy_workload(&rt);
            let s = rt.stats();
            if s.steals_local_node + s.steals_remote_node >= 400 {
                break;
            }
        }
        rt.stats()
    };
    let uni = accumulate(VictimPolicy::Uniform);
    let hier = accumulate(VictimPolicy::Hierarchical);
    assert!(
        hier.steals_local_node > uni.steals_local_node,
        "hierarchical must steal same-node strictly more than uniform \
         (hier {}/{} vs uniform {}/{})",
        hier.steals_local_node,
        hier.steals_remote_node,
        uni.steals_local_node,
        uni.steals_remote_node
    );
    assert!(
        hier.steal_locality_ratio() > uni.steal_locality_ratio(),
        "hierarchical locality ratio must beat uniform: {:.3} vs {:.3}",
        hier.steal_locality_ratio(),
        uni.steal_locality_ratio()
    );
    print_table(
        "Locality property: same-node steal share on 2 modelled nodes (asserted)",
        &["victim policy", "local", "remote", "local share"],
        &[
            vec![
                "uniform".into(),
                uni.steals_local_node.to_string(),
                uni.steals_remote_node.to_string(),
                format!("{:.3}", uni.steal_locality_ratio()),
            ],
            vec![
                "hierarchical".into(),
                hier.steals_local_node.to_string(),
                hier.steals_remote_node.to_string(),
                format!("{:.3}", hier.steal_locality_ratio()),
            ],
        ],
    );

    // --- real: ready-list on/off on a wide data-flow frame --------------
    let mut rows = Vec::new();
    for (label, enabled) in [("ready-list ON", true), ("ready-list OFF", false)] {
        let rt = Runtime::builder()
            .workers(4)
            .promotion(PromotionPolicy {
                enabled,
                promote_len: 16,
                promote_scans: 2,
            })
            .build();
        let t = measure_ns(5, || {
            let handles: Vec<Shared<u64>> = (0..512).map(|_| Shared::new(0)).collect();
            rt.scope(|ctx| {
                for h in &handles {
                    let hw = h.clone();
                    ctx.spawn([h.write()], move |t| {
                        *t.write(&hw) += 1;
                        std::hint::black_box((0..500).sum::<u64>());
                    });
                }
            });
        });
        let s = rt.stats();
        rows.push(vec![
            label.into(),
            format!("{:.2}", t as f64 / 1e6),
            s.promotions.to_string(),
            s.tasks_executed_stolen.to_string(),
        ]);
    }
    print_table(
        "Real: 512 independent writers, 4 workers (this host)",
        &["variant", "time (ms)", "promotions", "stolen"],
        &rows,
    );

    // --- real: aggregation on/off under thief pressure ------------------
    let mut rows = Vec::new();
    for (label, agg) in [("aggregation ON", true), ("aggregation OFF", false)] {
        let rt = Runtime::builder().workers(4).aggregation(agg).build();
        let t = measure_ns(5, || {
            let sum = AtomicUsize::new(0);
            rt.scope(|ctx| {
                let sum = &sum;
                for _ in 0..2000 {
                    ctx.spawn([], move |_| {
                        sum.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(sum.load(Ordering::Relaxed), 2000);
        });
        let s = rt.stats();
        rows.push(vec![
            label.into(),
            format!("{:.2}", t as f64 / 1e6),
            s.combine_batches.to_string(),
            s.aggregated_requests.to_string(),
        ]);
    }
    print_table(
        "Real: 2000 fine tasks, 4 workers (this host)",
        &["variant", "time (ms)", "combines", "aggregated reqs"],
        &rows,
    );

    // --- real: renaming on/off on the war-chain workload -----------------
    // Repeated whole-object overwrites feeding readers: without renaming
    // every round serializes behind the previous round's readers (WAR) and
    // writer (WAW); with renaming the writers get fresh version slots and
    // the rounds pipeline across workers.
    let (rounds, readers, len) = (64u64, 3usize, 512usize);
    let mut rows = Vec::new();
    let mut checksums = Vec::new();
    for (label, renaming) in [("renaming ON", true), ("renaming OFF", false)] {
        let rt = Runtime::builder().workers(4).renaming(renaming).build();
        let mut sum = 0;
        let t = measure_ns(5, || sum = war_chain(&rt, rounds, readers, len));
        checksums.push(sum);
        let s = rt.stats();
        rows.push(vec![
            label.into(),
            format!("{:.2}", t as f64 / 1e6),
            s.renames.to_string(),
            s.tasks_executed_stolen.to_string(),
            sum.to_string(),
        ]);
    }
    assert!(
        checksums.iter().all(|&c| c == checksums[0]),
        "renaming changed the war-chain result: {checksums:?}"
    );
    print_table(
        &format!(
            "Real: war-chain, {rounds} overwrite rounds x {readers} readers, 4 workers \
             (identical checksums)"
        ),
        &["variant", "time (ms)", "renames", "stolen", "checksum"],
        &rows,
    );

    // --- real: recorded replay vs online scheduling (PR 7) ---------------
    // The tiled Cholesky both ways on the same runtime: online re-spawns
    // and re-analyzes the full DAG every iteration; the recorded path pays
    // dependency analysis once at record time and replays the optimized
    // DAG (critical-path bands, fused chains, continuation spawning).
    // Asserted: per-replay dependency-analysis cost is exactly zero (the
    // `dataflow_pushes` counter stays flat across replays), and from
    // iteration 2 on the replay beats online scheduling.
    {
        let (cn, cnb, iters) = (512usize, 64usize, 8usize);
        let rt = Runtime::builder().workers(4).build();
        let orig = TiledMatrix::spd_random(cn, cnb, 42);
        let mut reference = orig.clone_matrix();
        cholesky_seq(&mut reference).unwrap();

        rt.reset_stats();
        let online_ns = measure_ns(iters, || {
            let a = cholesky_xkaapi(&rt, orig.clone_matrix()).unwrap();
            assert_eq!(a.max_abs_diff_lower(&reference), 0.0);
        });
        let online_pushes = rt.stats().dataflow_pushes / iters as u64;

        let mut rec = RecordedCholesky::record(&rt, orig.clone_matrix());
        let rs = rec.dag().stats();
        rec.replay(&rt).unwrap(); // iteration 1: first replay
        rt.reset_stats();
        let replay_ns = measure_ns(iters, || {
            // Iterations >= 2: reload input, re-execute the recorded DAG.
            rec.load(&orig);
            rec.replay(&rt).unwrap();
        });
        let replay_pushes = rt.stats().dataflow_pushes;
        assert_eq!(rec.result().max_abs_diff_lower(&reference), 0.0);
        assert_eq!(
            replay_pushes, 0,
            "replay must not re-run dependency analysis \
             ({replay_pushes} pushes across {iters} replays)"
        );
        assert!(
            replay_ns <= online_ns,
            "recorded replay (iterations >= 2) must beat online scheduling: \
             replay {:.2} ms vs online {:.2} ms",
            replay_ns as f64 / 1e6,
            online_ns as f64 / 1e6
        );
        print_table(
            &format!(
                "Real: recorded replay vs online, cholesky n={cn} nb={cnb}, \
                 median of {iters} iterations, 4 workers (asserted: replay wins, 0 pushes)"
            ),
            &[
                "variant",
                "time (ms)",
                "pushes/iter",
                "tasks",
                "groups (fused)",
                "critical path",
            ],
            &[
                vec![
                    "online data-flow".into(),
                    format!("{:.2}", online_ns as f64 / 1e6),
                    online_pushes.to_string(),
                    rs.tasks.to_string(),
                    "-".into(),
                    "-".into(),
                ],
                vec![
                    "recorded replay".into(),
                    format!("{:.2}", replay_ns as f64 / 1e6),
                    "0".into(),
                    rs.tasks.to_string(),
                    format!("{} ({} tasks fused)", rs.groups, rs.fused_tasks),
                    rs.critical_path_len.to_string(),
                ],
            ],
        );
    }

    // --- deterministic: ready-set width straight from the dataflow core --
    // Bind the war-chain access sequence into a standalone engine and
    // measure how many tasks are concurrently ready before anything runs.
    let h = Shared::renameable(0u64);
    let width = |enabled: bool| {
        let pol = RenamePolicy {
            enabled,
            ..Default::default()
        };
        let mut eng = DataflowEngine::new();
        for _ in 0..rounds {
            eng.bind(&[h.write()], &pol);
            for _ in 0..readers {
                eng.bind(&[h.read()], &pol);
            }
        }
        eng.ready_width()
    };
    let (w_on, w_off) = (width(true), width(false));
    assert!(
        w_on > w_off,
        "renaming must widen the war-chain ready set ({w_on} vs {w_off})"
    );
    print_table(
        "Deterministic: initial ready-set width of the war-chain DAG",
        &["variant", "ready width"],
        &[
            vec!["renaming ON".into(), w_on.to_string()],
            vec!["renaming OFF".into(), w_off.to_string()],
        ],
    );

    // --- real: park-threshold sweep (idle spin rounds before blocking) ---
    let mut rows = Vec::new();
    for park_rounds in [1u32, 32, 1024] {
        let rt = Runtime::builder()
            .workers(4)
            .steal_rounds_before_park(park_rounds)
            .build();
        let t = measure_ns(5, || {
            let s = rt.foreach_reduce(
                0..200_000,
                None,
                || 0u64,
                |a, i| *a += i as u64,
                |a, b| a + b,
            );
            assert_eq!(s, 199_999u64 * 100_000);
        });
        rows.push(vec![
            park_rounds.to_string(),
            format!("{:.2}", t as f64 / 1e6),
        ]);
    }
    print_table(
        "Real: park-threshold sweep, 200k-iteration reduction, 4 workers",
        &["steal rounds before park", "time (ms)"],
        &rows,
    );

    // --- simulated: aggregation at 48 cores ------------------------------
    // Spine + fan-out workload: many simultaneously idle thieves hammer one
    // victim, the regime the paper's aggregation targets.
    let mut tasks = Vec::new();
    let mut acc: Vec<Vec<(u64, bool)>> = Vec::new();
    for g in 0..60u64 {
        tasks.push(SimTask {
            work_ns: 25_000,
            bytes: 0,
        });
        acc.push(vec![(0, true)]);
        for j in 0..47u64 {
            tasks.push(SimTask {
                work_ns: 5_000,
                bytes: 0,
            });
            acc.push(vec![(0, false), (1_000 + g * 64 + j, true)]);
        }
    }
    let dag = TaskDag::from_accesses(tasks, &acc);
    let p48 = Platform::magny_cours(48);
    let mut rows = Vec::new();
    for (label, aggregation) in [("aggregation ON", true), ("aggregation OFF", false)] {
        let pol = DagPolicy::WorkStealing {
            steal_ns: 400,
            task_overhead_ns: 50,
            aggregation,
            spawn_ns: 0,
        };
        let r = simulate_dag(&p48, &dag, &pol, 7);
        rows.push(vec![
            label.into(),
            format!("{:.3}", r.makespan_ns as f64 / 1e6),
            r.steals.to_string(),
        ]);
    }
    print_table(
        "Simulated: spine + 47-wide fan-out, 48 virtual cores",
        &["variant", "makespan (ms)", "steals"],
        &rows,
    );

    // --- simulated: loop grain sweep (adaptive foreach) ------------------
    use xkaapi_sim::{simulate_loop, LoopPolicy, LoopWorkload};
    let w = LoopWorkload::jittered(100_000, 2_000, 0.4, 0, 3);
    let mut rows = Vec::new();
    for grain in [1usize, 8, 64, 512, 4096] {
        let r = simulate_loop(
            &p48,
            &w,
            &LoopPolicy::KaapiAdaptive {
                grain,
                steal_ns: 400,
            },
        );
        rows.push(vec![
            grain.to_string(),
            format!("{:.3}", r.makespan_ns as f64 / 1e6),
            r.chunks.to_string(),
            r.steals.to_string(),
        ]);
    }
    print_table(
        "Simulated: adaptive-loop grain sweep, 100k jittered iterations, 48 cores",
        &["grain", "makespan (ms)", "chunks", "steals"],
        &rows,
    );
    println!("\n(too-fine grains pay per-chunk costs; too-coarse grains lose balance —");
    println!(" the on-demand splitting keeps the middle flat, the paper's §II-D point)");

    // --- simulated: which paradigm feeds an offload engine best ----------
    // Three DAG shapes of identical per-task grain under the batched-launch
    // offload track: the engine amortizes its launch latency only when the
    // ready set stays wide enough to fill batches.
    let work = 5_000u64;
    // Fork-join: divide-and-conquer spawn tree — width doubles each phase
    // down to 2048 leaves, then the joins fold back up.
    let mut fj_tasks = Vec::new();
    let mut fj_phase: Vec<u32> = Vec::new();
    for (ph, level) in (0..=11u32).chain((0..11u32).rev()).enumerate() {
        for _ in 0..(1u64 << level) {
            fj_tasks.push(SimTask {
                work_ns: work,
                bytes: 0,
            });
            fj_phase.push(ph as u32);
        }
    }
    let fj = TaskDag::from_phases(fj_tasks, &fj_phase);
    // Data-flow: 64×64 wavefront — task (i,j) reads (i−1,j) and (i,j−1).
    let nw = 64usize;
    let mut wf_tasks = Vec::new();
    let mut wf_acc: Vec<Vec<(u64, bool)>> = Vec::new();
    for i in 0..nw {
        for j in 0..nw {
            let mut a = vec![((i * nw + j) as u64, true)];
            if i > 0 {
                a.push((((i - 1) * nw + j) as u64, false));
            }
            if j > 0 {
                a.push(((i * nw + j - 1) as u64, false));
            }
            wf_tasks.push(SimTask {
                work_ns: work,
                bytes: 0,
            });
            wf_acc.push(a);
        }
    }
    let wf = TaskDag::from_accesses(wf_tasks, &wf_acc);
    // Loop: 4096 fully independent iterations.
    let ind_tasks = vec![
        SimTask {
            work_ns: work,
            bytes: 0
        };
        4_096
    ];
    let ind_acc: Vec<Vec<(u64, bool)>> = (0..4_096).map(|i| vec![(i as u64, true)]).collect();
    let ind = TaskDag::from_accesses(ind_tasks, &ind_acc);
    let mut rows = Vec::new();
    for (label, dag) in [
        ("fork-join tree", &fj),
        ("data-flow wavefront", &wf),
        ("independent loop", &ind),
    ] {
        let pol = DagPolicy::Offload {
            launch_ns: 5_000,
            batch: 32,
            transfer_ns: 200,
        };
        let r = simulate_dag(&p48, dag, &pol, 11);
        let n = dag.len() as f64;
        rows.push(vec![
            label.into(),
            dag.len().to_string(),
            format!("{:.3}", r.makespan_ns as f64 / 1e6),
            r.launches.to_string(),
            format!("{:.1}", n / r.launches.max(1) as f64),
            format!(
                "{:.1}",
                100.0 * dag.total_work_ns() as f64 / (48.0 * r.makespan_ns as f64)
            ),
        ]);
    }
    print_table(
        "Simulated: feeding the offload track (batch 32, 5 µs launch), 48 lanes",
        &[
            "paradigm",
            "tasks",
            "makespan (ms)",
            "launches",
            "tasks/launch",
            "efficiency %",
        ],
        &rows,
    );
    println!("\n(the loop paradigm keeps the ready set wide and feeds every batch");
    println!(" at once; the wavefront's ready set is one diagonal — too narrow to");
    println!(" cover launch latency; the fork-join tree sits between: its middle");
    println!(" phases are wide but the narrow top and join barriers drain lanes)");
}
