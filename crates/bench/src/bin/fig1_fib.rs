//! Fig. 1 — Fibonacci task-creation micro-benchmark.
//!
//! Reproduces the paper's table: execution time of the doubly-recursive
//! Fibonacci program (one task + one inline call + sync per node) on four
//! runtimes — Cilk-like, TBB-like, X-Kaapi, OpenMP-like — at 1, 8, 16, 32
//! and 48 cores, plus the 1-core slowdown against the sequential program.
//!
//! The 1-core column is **measured for real** on this host (per-task
//! overheads of our actual runtime implementations). Multi-core columns
//! come from the calibrated fork-join models of `xkaapi-sim` (this host
//! has one core; see DESIGN.md §1).
//!
//! Usage: `fig1_fib [n]` (default 27; the paper uses 35 — linear scaling
//! in task count applies).

use xkaapi_bench::{measure_ns, print_table};
use xkaapi_core::{Ctx, Runtime};
use xkaapi_forkjoin::{CilkCtx, CilkPool, TbbCtx, TbbPool};
use xkaapi_omp::{OmpCtx, OmpPool};
use xkaapi_sim::{fib_call_count, CentralPoolModel, ForkJoinModel};

fn fib_seq(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_seq(n - 1) + fib_seq(n - 2)
    }
}

fn fib_xkaapi(ctx: &mut Ctx<'_>, n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = ctx.join(|c| fib_xkaapi(c, n - 1), |c| fib_xkaapi(c, n - 2));
    a + b
}

fn fib_cilk(ctx: &CilkCtx<'_>, n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = ctx.join(|c| fib_cilk(c, n - 1), |c| fib_cilk(c, n - 2));
    a + b
}

fn fib_tbb(ctx: &TbbCtx<'_>, n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = ctx.join(|c| fib_tbb(c, n - 1), |c| fib_tbb(c, n - 2));
    a + b
}

fn fib_omp(ctx: &OmpCtx<'_>, n: u64, out: &std::sync::atomic::AtomicU64) {
    use std::sync::atomic::Ordering;
    if n < 2 {
        out.fetch_add(n, Ordering::Relaxed);
        return;
    }
    ctx.task(move |c| fib_omp(c, n - 1, out));
    fib_omp(ctx, n - 2, out);
    ctx.taskwait();
}

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(27);
    let tasks = fib_call_count(n);
    let expect = fib_seq(n);
    println!("# Fig. 1 — Fibonacci({n}) task creation ({tasks} tasks)");
    println!("(paper: fib(35), sequential 0.091 s on 2.2 GHz Magny-Cours)");

    // --- real 1-core measurements -------------------------------------
    let reps = 3;
    let t_seq = measure_ns(reps, || {
        std::hint::black_box(fib_seq(std::hint::black_box(n)));
    });

    let rt = Runtime::new(1);
    let t_kaapi = measure_ns(reps, || {
        let v = rt.scope(|c| fib_xkaapi(c, n));
        assert_eq!(v, expect);
    });
    drop(rt);

    let pool = CilkPool::new(1);
    let t_cilk = measure_ns(reps, || {
        let v = pool.run(|c| fib_cilk(c, n));
        assert_eq!(v, expect);
    });
    drop(pool);

    let pool = TbbPool::new(1);
    let t_tbb = measure_ns(reps, || {
        let v = pool.run(|c| fib_tbb(c, n));
        assert_eq!(v, expect);
    });
    drop(pool);

    let pool = OmpPool::new(1);
    let t_omp = measure_ns(reps, || {
        let out = std::sync::atomic::AtomicU64::new(0);
        pool.single_producer(|c| fib_omp(c, n, &out));
        assert_eq!(out.load(std::sync::atomic::Ordering::Relaxed), expect);
    });
    drop(pool);

    let slowdown = |t: u64| format!("x {:.1}", t as f64 / t_seq as f64);
    print_table(
        "Measured on this host (1 core, real)",
        &["runtime", "time (ms)", "slowdown vs seq"],
        &[
            vec![
                "sequential".into(),
                format!("{:.3}", t_seq as f64 / 1e6),
                "x 1".into(),
            ],
            vec![
                "Cilk-like".into(),
                format!("{:.3}", t_cilk as f64 / 1e6),
                slowdown(t_cilk),
            ],
            vec![
                "TBB-like".into(),
                format!("{:.3}", t_tbb as f64 / 1e6),
                slowdown(t_tbb),
            ],
            vec![
                "XKaapi".into(),
                format!("{:.3}", t_kaapi as f64 / 1e6),
                slowdown(t_kaapi),
            ],
            vec![
                "OpenMP-like".into(),
                format!("{:.3}", t_omp as f64 / 1e6),
                slowdown(t_omp),
            ],
        ],
    );
    println!("\n(paper Fig.1 slowdowns: Cilk+ x11.7, TBB x26, Kaapi x8, OpenMP x27)");

    // --- calibrated models for 8..48 cores -----------------------------
    let overhead = |t: u64| (t.saturating_sub(t_seq)) as f64 / tasks as f64;
    let mk_ws = |t: u64, steal: f64| ForkJoinModel {
        t_seq_ns: t_seq,
        tasks,
        task_overhead_ns: overhead(t).max(1.0),
        steal_ns: steal,
        depth: n,
    };
    let kaapi = mk_ws(t_kaapi, 250.0);
    let cilk = mk_ws(t_cilk, 220.0);
    let tbb = mk_ws(t_tbb, 400.0);
    let omp = CentralPoolModel {
        t_seq_ns: t_seq,
        tasks,
        queue_ns: 150.0,
        beta: 0.8,
        deferred_fraction: 0.35,
        inline_overhead_ns: overhead(t_omp).max(1.0),
    };

    let cores = [1usize, 8, 16, 32, 48];
    let rows: Vec<Vec<String>> = cores
        .iter()
        .map(|&p| {
            vec![
                p.to_string(),
                format!("{:.3}", cilk.ws_time_ns(p) / 1e6),
                format!("{:.3}", tbb.ws_time_ns(p) / 1e6),
                format!("{:.3}", kaapi.ws_time_ns(p) / 1e6),
                if p >= 32 {
                    "(diverges)".into()
                } else {
                    format!("{:.1}", omp.time_ns(p) / 1e6)
                },
            ]
        })
        .collect();
    print_table(
        "Modelled execution times, ms (simulated Magny-Cours; constants calibrated above)",
        &["#cores", "Cilk-like", "TBB-like", "Kaapi", "OpenMP-like"],
        &rows,
    );
    println!("\n(paper, seconds: 1 core 1.063/2.356/0.728/2.429; 8 cores 0.127/0.293/0.094/51.06;");
    println!(" 16 cores 0.065/0.146/0.047/104.14; 32/48 cores OpenMP stopped after 5 min)");
}
