//! Fig. 7 — sparse skyline LDLᵀ speedup: X-Kaapi data-flow vs the
//! OpenMP version with `taskwait` phase barriers, cores 1..45.
//!
//! The paper factors the MAXPLANE H matrix (n = 59462, 3.59 % nonzeros,
//! best block size BS = 88, sequential time 47.79 s). We generate a
//! skyline matrix with the same density/profile shape (scaled order by
//! default), build the *actual* blocked-factorisation DAG from the block
//! envelope, measure the block kernels for real, and schedule both
//! dependency structures — true data-flow edges vs phase barriers — with
//! the same work-stealing policy in virtual time. The gap is then exactly
//! the cost of the synchronisation the paper blames.
//!
//! A real cross-check verifies both parallel factorisations bit-agree with
//! the sequential one on this host.
//!
//! Usage: `fig7_sparse [n]` (default 8800; paper: 59462).

use xkaapi_bench::{calibrate_kernels, print_table, scale_costs, skyline_dag, ws_policy};
use xkaapi_sim::{simulate_dag, Platform};
use xkaapi_skyline::{BlockSkyline, SkylineMatrix};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8_800);
    const BS: usize = 88; // the paper's best block size
    const DENSITY: f64 = 0.0359;
    println!("# Fig. 7 — skyline LDLᵀ speedups (n={n}, density {DENSITY}, BS={BS})");
    println!("(paper: n=59462, Tseq=47.79 s)");

    let a = SkylineMatrix::generate_spd(n, DENSITY, 2026);
    println!(
        "\ngenerated matrix: density {:.4} ({} stored entries)",
        a.density(),
        a.stored()
    );
    let bsk = BlockSkyline::from_skyline(&a, BS);
    println!(
        "block skyline: {} block rows, {} stored blocks",
        bsk.nbl,
        bsk.stored_blocks()
    );

    // Calibrate block kernels (nb=88 measured through nb=96 scaling).
    let base = calibrate_kernels(88);
    let costs = scale_costs(&base, BS);

    let flow = skyline_dag(&bsk, &costs, false);
    let omp = skyline_dag(&bsk, &costs, true);
    println!(
        "\nDAG: {} tasks, work {:.3} s, critical path: dataflow {:.1} ms vs omp-barriers {:.1} ms",
        flow.len(),
        flow.total_work_ns() as f64 / 1e9,
        flow.critical_path_ns() as f64 / 1e6,
        omp.critical_path_ns() as f64 / 1e6,
    );

    let cores = [1usize, 2, 4, 8, 12, 16, 24, 32, 40, 45];
    let t1 = simulate_dag(&Platform::magny_cours(1), &flow, &ws_policy(), 1).makespan_ns as f64;
    let rows: Vec<Vec<String>> = cores
        .iter()
        .map(|&c| {
            let p = Platform::magny_cours(c);
            let tf = simulate_dag(&p, &flow, &ws_policy(), 1).makespan_ns as f64;
            let to = simulate_dag(&p, &omp, &ws_policy(), 1).makespan_ns as f64;
            vec![
                c.to_string(),
                format!("{:.2}", t1 / to),
                format!("{:.2}", t1 / tf),
                c.to_string(),
            ]
        })
        .collect();
    print_table(
        "Speedup (Tp/Tseq)",
        &["cores", "OpenMP", "XKaapi", "ideal"],
        &rows,
    );
    println!("\n(paper: XKaapi clearly above OpenMP; barriers cap the OpenMP curve)");

    // --- real cross-check ------------------------------------------------
    println!("\n## Real cross-check (n=600, BS=24, 4 threads)");
    let a = SkylineMatrix::generate_spd(600, 0.06, 5);
    let mut f_seq = BlockSkyline::from_skyline(&a, 24);
    xkaapi_skyline::ldlt_seq(&mut f_seq);
    let rt = xkaapi_core::Runtime::new(4);
    let f_k = xkaapi_skyline::ldlt_xkaapi(&rt, BlockSkyline::from_skyline(&a, 24));
    let pool = xkaapi_omp::OmpPool::new(4);
    let mut f_o = BlockSkyline::from_skyline(&a, 24);
    xkaapi_skyline::ldlt_omp(&pool, &mut f_o);
    let mut dk: f64 = 0.0;
    let mut do_: f64 = 0.0;
    for i in 0..600 {
        for j in 0..=i {
            dk = dk.max((f_k.at(i, j) - f_seq.at(i, j)).abs());
            do_ = do_.max((f_o.at(i, j) - f_seq.at(i, j)).abs());
        }
    }
    println!("xkaapi dataflow : max|Δ| vs seq = {dk:.2e}");
    println!("omp taskwait    : max|Δ| vs seq = {do_:.2e}");
}
