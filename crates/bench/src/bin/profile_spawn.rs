//! Internal profiling helper: decompose the xkaapi spawn/join fast-path cost.
use std::time::Instant;
use xkaapi_core::Runtime;

fn time<F: FnMut()>(label: &str, n: u64, mut f: F) {
    let t0 = Instant::now();
    f();
    let ns = t0.elapsed().as_nanos() as u64 / n;
    println!("{label:40} {ns:>6} ns/op");
}

fn main() {
    let rt = Runtime::new(1);
    const N: u64 = 200_000;
    // flat spawn of empty tasks into one frame (one scope)
    time("flat spawn+sync, 1 scope, N tasks", N, || {
        rt.scope(|ctx| {
            for _ in 0..N {
                ctx.spawn([], |_| {});
            }
        });
    });
    // scope churn: one empty scope per op (frame lifecycle only)
    time("empty nested scope per op", N / 10, || {
        rt.scope(|ctx| {
            for _ in 0..N / 10 {
                ctx.scope(|_| {});
            }
        });
    });
    // join with empty branches (frame + task + claim + execute)
    time("join(empty,empty) per op", N / 10, || {
        rt.scope(|ctx| {
            fn rec(c: &mut xkaapi_core::Ctx<'_>, d: u32) {
                if d == 0 {
                    return;
                }
                c.join(|a| rec(a, d - 1), |b| rec(b, d - 1));
            }
            // a tree of 2^k-1 joins ~ N/10: depth 14 ≈ 16383... adjust:
            for _ in 0..(N / 10 / 16383).max(1) {
                rec(ctx, 14);
            }
        });
    });
    // raw allocation cost reference
    time("Arc<u64>+Box<closure> alloc/drop", N, || {
        for i in 0..N {
            let a = std::sync::Arc::new(i);
            let b: Box<dyn Fn() -> u64> = Box::new(move || *a);
            std::hint::black_box(b());
        }
    });
}
