//! Fig. 3 — speedup of the two EPX parallel loops: OpenMP static vs
//! OpenMP dynamic vs the X-Kaapi adaptive foreach, cores 1..48.
//!
//! Per-iteration costs are measured for real from the EPX mini-app phases
//! on this host; the loop schedulers then run in virtual time on the
//! Magny-Cours model. The paper's observation: the three are close, with
//! X-Kaapi pulling ahead past ~25 cores.
//!
//! Usage: `fig3_loops [iters]` (default 60000).

use std::time::Instant;
use xkaapi_bench::{print_table, PAPER_CORES};
use xkaapi_epx::{loopelm, repera, ExecMode, Material, Mesh, State};
use xkaapi_sim::{loop_speedups, LoopPolicy, LoopWorkload};

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000);
    println!("# Fig. 3 — EPX parallel-loop speedups (Tseq/Tpar)");

    // Real per-iteration calibration from the mini-app.
    let mesh = Mesh::block(12, 12, 4);
    let mat = Material::default();
    let mut state = State::new(&mesh, 32, 7);
    for (i, d) in state.disp.iter_mut().enumerate() {
        d[2] = -0.01 * (i % 13) as f64;
    }
    let t0 = Instant::now();
    loopelm(&mesh, &mat, &mut state, &ExecMode::Seq);
    let loopelm_iter_ns = (t0.elapsed().as_nanos() as u64 / mesh.num_elems() as u64).max(100);
    let t0 = Instant::now();
    let cands = repera(&mesh, &state, 4, 2.5, &ExecMode::Seq);
    let repera_iter_ns = (t0.elapsed().as_nanos() as u64 / mesh.num_nodes() as u64).max(100);
    println!(
        "\ncalibration (real): loopelm {loopelm_iter_ns} ns/elem, repera {repera_iter_ns} ns/node ({} candidates)",
        cands.len()
    );

    // Combined workload: the two loops of one EPX step, with the cost
    // jitter element-state dependence produces.
    let base = (loopelm_iter_ns + repera_iter_ns) / 2;
    let w = LoopWorkload::jittered(iters, base, 0.35, 96, 11);

    let policies: [(&str, LoopPolicy); 3] = [
        ("OpenMP/static", LoopPolicy::OmpStatic),
        (
            "OpenMP/dynamic",
            LoopPolicy::OmpDynamic {
                chunk: 64,
                counter_ns: 150,
            },
        ),
        (
            "XKaapi",
            LoopPolicy::KaapiAdaptive {
                grain: 64,
                steal_ns: 400,
            },
        ),
    ];
    let series: Vec<Vec<(usize, f64)>> = policies
        .iter()
        .map(|(_, p)| loop_speedups(&w, p, &PAPER_CORES))
        .collect();

    let rows: Vec<Vec<String>> = PAPER_CORES
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let mut row = vec![c.to_string()];
            for s in &series {
                row.push(format!("{:.2}", s[i].1));
            }
            row.push(format!("{c}"));
            row
        })
        .collect();
    print_table(
        &format!("Speedups, {iters} iterations"),
        &[
            "cores",
            "OpenMP/static",
            "OpenMP/dynamic",
            "XKaapi",
            "ideal",
        ],
        &rows,
    );
    println!("\n(paper: all three near-ideal; static ≈ dynamic; XKaapi ahead past ~25 cores)");
}
