//! Fig. 6 — LOOPELM and REPERA speedups on the MEPPEN and MAXPLANE
//! instances (X-Kaapi adaptive loops), cores 1..48.
//!
//! The paper's observation to reproduce: on MEPPEN, LOOPELM has *limited
//! speedup due to its memory-intensive character* while REPERA scales
//! well; on MAXPLANE both behave better. The per-iteration costs and
//! bytes-per-iteration come from real measurements of the mini-app kernels
//! with each scenario's history-length knob.

use std::time::Instant;
use xkaapi_bench::{print_table, PAPER_CORES};
use xkaapi_epx::{loopelm, repera, ExecMode, Material, Mesh, Scenario, State};
use xkaapi_sim::{loop_speedups, LoopPolicy, LoopWorkload};

struct LoopCal {
    iter_ns: u64,
    bytes_per_iter: u64,
}

fn calibrate(sc: &Scenario) -> (LoopCal, LoopCal) {
    let mesh = Mesh::block(10, 10, 4);
    let mat = Material::default();
    let mut state = State::new(&mesh, sc.history_len, 3);
    for (i, d) in state.disp.iter_mut().enumerate() {
        d[2] = -0.01 * (i % 13) as f64;
    }
    let t0 = Instant::now();
    loopelm(&mesh, &mat, &mut state, &ExecMode::Seq);
    let le_ns = (t0.elapsed().as_nanos() as u64 / mesh.num_elems() as u64).max(100);
    // LOOPELM uncached traffic: the streamed history dominates (nodal
    // gathers mostly hit cache); 2 passes (read+write) of 8 B per entry.
    let le_bytes = (sc.history_len * 16 + 64) as u64;
    let t0 = Instant::now();
    let _ = repera(
        &mesh,
        &state,
        sc.repera_intensity,
        sc.gap_threshold,
        &ExecMode::Seq,
    );
    let rp_ns = (t0.elapsed().as_nanos() as u64 / mesh.num_nodes() as u64).max(100);
    (
        LoopCal {
            iter_ns: le_ns,
            bytes_per_iter: le_bytes,
        },
        LoopCal {
            iter_ns: rp_ns,
            bytes_per_iter: 128,
        },
    )
}

fn main() {
    println!("# Fig. 6 — LOOPELM / REPERA speedups per scenario (X-Kaapi foreach)");
    for sc in [Scenario::meppen(1), Scenario::maxplane(1)] {
        let (le, rp) = calibrate(&sc);
        println!(
            "\ncalibration {} (real): loopelm {} ns/elem + {} B, repera {} ns/node",
            sc.name, le.iter_ns, le.bytes_per_iter, rp.iter_ns
        );
        let n = 50_000;
        let w_le = LoopWorkload::jittered(n, le.iter_ns, 0.3, le.bytes_per_iter, 5);
        let w_rp = LoopWorkload::jittered(n, rp.iter_ns, 0.4, rp.bytes_per_iter, 6);
        let pol = LoopPolicy::KaapiAdaptive {
            grain: 64,
            steal_ns: 400,
        };
        let s_le = loop_speedups(&w_le, &pol, &PAPER_CORES);
        let s_rp = loop_speedups(&w_rp, &pol, &PAPER_CORES);
        let rows: Vec<Vec<String>> = PAPER_CORES
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                vec![
                    c.to_string(),
                    format!("{:.2}", s_le[i].1),
                    format!("{:.2}", s_rp[i].1),
                    c.to_string(),
                ]
            })
            .collect();
        print_table(sc.name, &["cores", "LOOPELM", "REPERA", "ideal"], &rows);
    }
    println!("\n(paper: MEPPEN LOOPELM limited by memory bandwidth; REPERA close to ideal;");
    println!(" MAXPLANE both loops scale well)");
}
