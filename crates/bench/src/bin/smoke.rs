//! Perf-snapshot smoke bench: a fast, fixed-shape measurement of the three
//! headline metrics of the runtime, one per paradigm —
//!
//! * **fib spawn throughput** (fork-join): tasks/s over `fib(n)` via
//!   [`Ctx::join`];
//! * **foreach bandwidth** (adaptive loops): elements/s over a saxpy-like
//!   sweep;
//! * **cholesky gflops** (data-flow): a tiled factorization on the
//!   data-flow engine.
//!
//! Since PR 3 the snapshot also records the **steal-locality counters**
//! of the victim-selection policies (uniform / hierarchical /
//! locality-first on a modelled 2-node machine), so the perf trajectory
//! tracks where steals land, not just how fast the paradigms run. Since
//! PR 4 it additionally records a **submit_flood** run — many small root
//! jobs from 4 submitter threads through the non-blocking
//! `Runtime::submit` front door — with throughput and the per-lane drain
//! counters of the sharded inject lanes. Since PR 5 it records a
//! **priority_flood** run: a mixed-band flood through the
//! attribute-carrying `Runtime::task()` builder with `Affinity::Auto`
//! lane targeting, reporting per-band completion latency and the
//! per-lane placement counters. Since PR 7 it records a
//! **recorded_replay** run: the same tiled Cholesky recorded once with
//! `Runtime::record` and replayed 8 times — per-iteration dependency
//! analysis is asserted to be zero (the `dataflow_pushes` stat stays
//! flat across replays) — and, under `--json`, exports the recorded DAG
//! and the measured replay schedule as graphviz DOT + chrome-trace JSON
//! next to the snapshot. Since PR 8 it records a **fault_tolerance**
//! run: a submit flood where 1% of the jobs panic (the pool must absorb
//! every payload and keep serving), a cancel wave over a shared
//! [`CancelToken`], and a deadline shed — throughput plus the lifecycle
//! counters (`tasks_panicked` / `tasks_cancelled` / `jobs_expired`) land
//! in the snapshot, and the pool proves it is still alive afterwards.
//! Since PR 9 the **priority_flood** run executes with live telemetry
//! enabled (`Runtime::set_tracing`): the snapshot gains a `telemetry`
//! section with the per-band submit→start and start→done latency
//! quantiles (p50/p99/p999) from the banded histograms, plus the trace
//! event/drop counts — and the per-lane JSON is read back from the
//! unified [`MetricsRegistry`] instead of being merged bench-side.
//! Since PR 10 it records an **offload_pipeline** run: independent
//! pipelines of dependent stages all routed to the accelerator track
//! (`Track::Offload`) — H2D upload on first use, batched kernel
//! launches, D2H commit on completion — with end-to-end task
//! throughput, the transfer/batch counters, and the completion-drain
//! latency p50/p99 read from the NORMAL-band submit→start histogram
//! (completion jobs are stamped when the engine injects them).
//!
//! Usage:
//!
//! * `smoke` — human-readable table;
//! * `smoke --json` — additionally writes `BENCH_PR10.json` (snapshot file
//!   name pinned per PR so the perf trajectory accretes one file per PR)
//!   plus the `cholesky_recorded.dot` / `cholesky_executed.dot` /
//!   `cholesky_recorded_trace.json` / `cholesky_replay_trace.json`
//!   schedule exports;
//! * `smoke --check` — the **regression gate**: compares this run's
//!   fib/foreach/cholesky/submit_flood/recorded_replay numbers against
//!   the highest-numbered committed `BENCH_PR*.json` and exits non-zero
//!   when any metric lost more than the tolerance (10% default,
//!   `XKAAPI_BENCH_TOLERANCE` overrides — see `xkaapi_bench::check`).
//!
//! [`Ctx::join`]: xkaapi_core::Ctx::join

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xkaapi_bench::{
    busy_work, gflops, measure_ns, print_table, steal_heavy_workload, SchedPolicy, VictimPolicy,
};
use xkaapi_core::{
    Affinity, CancelToken, Ctx, MetricsRegistry, Priority, Runtime, Shared, SubmitError, Topology,
};
use xkaapi_linalg::{cholesky_seq, cholesky_xkaapi, RecordedCholesky, TiledMatrix};

const SNAPSHOT_FILE: &str = "BENCH_PR10.json";

/// Per-lane `{"node", "submitted", "drained"}` JSON rows read back from
/// the unified [`MetricsRegistry`] gauges. The bench used to merge the
/// lane counters itself from `inject_lane_stats`; since PR 9 the registry
/// is the single merge path and the bench only formats it.
fn lanes_json(m: &MetricsRegistry) -> String {
    (0usize..)
        .map_while(|n| {
            let s = m.get(&format!("inject_lane{n}_submitted"))?;
            let d = m.get(&format!("inject_lane{n}_drained"))?;
            Some(format!(
                "{{\"node\": {n}, \"submitted\": {s}, \"drained\": {d}}}"
            ))
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn fib(c: &mut Ctx<'_>, n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        let (a, b) = c.join(|c| fib(c, n - 1), |c| fib(c, n - 2));
        a + b
    }
}

/// Number of join nodes fib(n) creates (interior calls).
fn fib_tasks(n: u64) -> u64 {
    if n < 2 {
        0
    } else {
        1 + fib_tasks(n - 1) + fib_tasks(n - 2)
    }
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let check = std::env::args().any(|a| a == "--check");
    // Builder defaults: XKAAPI_WORKERS (if set) or available parallelism —
    // the snapshot is tunable without recompiling.
    let rt = Runtime::builder().build();
    let workers = rt.num_workers();
    let t0 = Instant::now();

    // --- fib spawn throughput (fork-join paradigm) ----------------------
    let fib_n = 22u64;
    let tasks = fib_tasks(fib_n);
    let fib_ns = measure_ns(5, || {
        let v = rt.scope(|ctx| fib(ctx, fib_n));
        assert_eq!(v, 17_711);
    });
    let fib_mtasks_per_s = tasks as f64 / fib_ns as f64 * 1e3;

    // --- foreach bandwidth (adaptive-loop paradigm) ---------------------
    let n = 4_000_000usize;
    let mut x = vec![1.0f64; n];
    let y: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
    let foreach_ns = measure_ns(5, || {
        let (xs, ys) = (x.as_mut_ptr() as usize, y.as_ptr() as usize);
        rt.foreach_chunks(0..n, None, move |r| {
            // Safety: chunks partition 0..n disjointly; x outlives the loop.
            let xp = xs as *mut f64;
            let yp = ys as *const f64;
            for i in r {
                unsafe { *xp.add(i) += 2.5 * *yp.add(i) };
            }
        });
    });
    std::hint::black_box(&x);
    // 2 reads + 1 write of f64 per element.
    let foreach_gbs = (n * 24) as f64 / foreach_ns as f64;
    let foreach_melems_per_s = n as f64 / foreach_ns as f64 * 1e3;

    // --- cholesky gflops (data-flow paradigm) ---------------------------
    let (cn, nb) = (512usize, 64usize);
    let orig = TiledMatrix::spd_random(cn, nb, 42);
    let mut reference = orig.clone_matrix();
    cholesky_seq(&mut reference).unwrap();
    let mut chol_gflops = 0.0f64;
    let chol_ns = measure_ns(3, || {
        let a = cholesky_xkaapi(&rt, orig.clone_matrix()).unwrap();
        assert_eq!(a.max_abs_diff_lower(&reference), 0.0);
    });
    chol_gflops += gflops(cn, chol_ns);

    // --- recorded_replay: record-once / replay-many Cholesky (PR 7) -----
    // The same factorization recorded ahead of time (`Runtime::record`):
    // dependency analysis is paid once at record time, each of the 8
    // timed iterations reloads the input and replays the optimized DAG.
    // `dataflow_pushes` staying flat across replays is the structural
    // proof that replay does zero per-iteration dependency analysis.
    let mut rec = RecordedCholesky::record(&rt, orig.clone_matrix());
    let rec_stats = rec.dag().stats();
    rec.replay(&rt).unwrap(); // warm-up (first factorization)
    assert_eq!(rec.result().max_abs_diff_lower(&reference), 0.0);
    rt.reset_stats();
    let replay_iters = 8usize;
    let replay_ns = measure_ns(replay_iters, || {
        rec.load(&orig);
        rec.replay(&rt).unwrap();
    });
    let replay_pushes = rt.stats().dataflow_pushes;
    assert_eq!(
        replay_pushes, 0,
        "replay re-ran dependency analysis ({replay_pushes} pushes across {replay_iters} replays)"
    );
    assert_eq!(rec.result().max_abs_diff_lower(&reference), 0.0);
    let replay_gflops = gflops(cn, replay_ns);
    // The gated form of this section: a same-process ratio, so host-load
    // noise hits both sides and cancels (see check::GATE_METRICS).
    let replay_speedup = chol_ns as f64 / replay_ns as f64;

    // --- steal locality per victim policy (2 modelled NUMA nodes) -------
    // A steal-heavy workload (busy data-flow chains + an adaptive
    // reduction whose splits hand slices to requesting thieves) on 8
    // workers / 2 modelled nodes; the per-policy counters (local vs remote
    // steals, escalations) feed the perf-trajectory JSON alongside the
    // paradigm timings. Rounds accumulate until the locality sample is
    // solid, so the recorded ratios are not single-round noise.
    let vp_workers = 8usize;
    let mut victim_rows = Vec::new();
    let mut victim_json = Vec::new();
    for victim in VictimPolicy::ALL {
        let rt_v = SchedPolicy::DistributedAggregated.build_runtime_with(
            vp_workers,
            victim,
            Topology::two_level(vp_workers, 4),
        );
        let v_ns = measure_ns(3, || {
            steal_heavy_workload(&rt_v);
        });
        for _ in 0..1000 {
            let s = rt_v.stats();
            if s.steals_local_node + s.steals_remote_node >= 300 {
                break;
            }
            steal_heavy_workload(&rt_v);
        }
        let s = rt_v.stats();
        victim_rows.push(vec![
            format!("steals [{}]", victim.label()),
            format!(
                "{}/{} local",
                s.steals_local_node,
                s.steals_local_node + s.steals_remote_node
            ),
            format!(
                "{:.2} ms, {} escalations, locality {:.3}",
                v_ns as f64 / 1e6,
                s.victim_escalations,
                s.steal_locality_ratio()
            ),
        ]);
        victim_json.push(format!(
            "{{\"policy\": \"{}\", \"ns\": {v_ns}, \"steals_local_node\": {}, \
             \"steals_remote_node\": {}, \"victim_escalations\": {}, \
             \"locality_ratio\": {:.4}}}",
            victim.label(),
            s.steals_local_node,
            s.steals_remote_node,
            s.victim_escalations,
            s.steal_locality_ratio()
        ));
    }

    // --- submit_flood: the injection subsystem under submitter pressure --
    // 4 submitter threads flood the non-blocking `Runtime::submit` front
    // door with small root jobs on 8 workers / 2 modelled NUMA nodes (so
    // the sharded lanes actually shard); the snapshot records throughput,
    // the per-lane submitted/drained counters and the own-vs-remote lane
    // drain split of the worker side.
    let sf_workers = 8usize;
    let sf_submitters = 4u64;
    let sf_jobs_per = 5_000u64;
    let rt_sf = Arc::new(SchedPolicy::DistributedAggregated.build_runtime_with(
        sf_workers,
        VictimPolicy::Hierarchical,
        Topology::two_level(sf_workers, 4),
    ));
    let flood = |rt: &Arc<Runtime>| {
        let threads: Vec<_> = (0..sf_submitters)
            .map(|s| {
                let rt = Arc::clone(rt);
                std::thread::spawn(move || {
                    let handles: Vec<_> = (0..sf_jobs_per)
                        .map(|i| {
                            rt.submit(move |_ctx| busy_work(s * 7919 + i, 400))
                                .expect("Block admission never rejects")
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.wait())
                        .fold(0u64, u64::wrapping_add)
                })
            })
            .collect();
        threads
            .into_iter()
            .map(|t| t.join().unwrap())
            .fold(0u64, u64::wrapping_add)
    };
    let mut sf_sum = 0u64;
    let sf_ns = measure_ns(3, || sf_sum = flood(&rt_sf));
    let sf_total = sf_submitters * sf_jobs_per;
    let sf_jobs_per_s = sf_total as f64 / sf_ns as f64 * 1e9;
    // Counters of exactly one flood (the timed rounds accumulate): reset,
    // run once more, snapshot — so the recorded lane/drain counters are
    // consistent with the `jobs` count in the same JSON object.
    rt_sf.reset_stats();
    let sf_check = flood(&rt_sf);
    assert_eq!(sf_check, sf_sum, "flood checksum drifted across rounds");
    let sf_stats = rt_sf.stats();
    let lane_json = lanes_json(&rt_sf.metrics());

    // --- priority_flood: mixed-band builder submits with Auto affinity --
    // One submitter floods the attribute-carrying front door with equal
    // thirds of High/Normal/Low jobs, interleaved; Affinity::Auto + two
    // handles homed on the two modelled nodes split the flood across the
    // inject lanes by data ownership. Recorded: per-band completion
    // latency (mean/max since flood start, stamped by on_complete) and
    // the per-lane placement counters.
    let pf_workers = 8usize;
    let pf_per_band = 2_000u64;
    let rt_pf = Arc::new(SchedPolicy::DistributedAggregated.build_runtime_with(
        pf_workers,
        VictimPolicy::Hierarchical,
        Topology::two_level(pf_workers, 4),
    ));
    // Live telemetry toggle on a running pool: the flood below executes
    // with event tracing + banded latency histograms on, feeding the
    // `telemetry` snapshot section (submit→start / start→done quantiles).
    rt_pf.set_tracing(true);
    let pf_homes: Vec<Shared<u64>> = (0..2)
        .map(|n| {
            let h = Shared::new(0u64);
            h.set_home(n);
            h
        })
        .collect();
    const PF_BANDS: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];
    // (latency sum, latency max, count) per band.
    let pf_lat: Arc<Vec<[AtomicU64; 3]>> = Arc::new(
        (0..3)
            .map(|_| [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)])
            .collect(),
    );
    let pf_t0 = Instant::now();
    let mut pf_handles = Vec::with_capacity((pf_per_band * 3) as usize);
    for i in 0..pf_per_band * 3 {
        let prio = PF_BANDS[(i % 3) as usize];
        let home = &pf_homes[(i % 2) as usize];
        let h = rt_pf
            .task()
            .priority(prio)
            .affinity(Affinity::Auto)
            .reads(home)
            .submit(move |_ctx| busy_work(i, 2_000))
            .expect("Block admission never rejects");
        let lat = Arc::clone(&pf_lat);
        let band = prio.band();
        h.on_complete(move || {
            let ns = pf_t0.elapsed().as_nanos() as u64;
            lat[band][0].fetch_add(ns, Ordering::Relaxed);
            lat[band][1].fetch_max(ns, Ordering::Relaxed);
            lat[band][2].fetch_add(1, Ordering::Relaxed);
        });
        pf_handles.push(h);
    }
    let mut pf_sum = 0u64;
    for h in pf_handles {
        pf_sum = pf_sum.wrapping_add(h.wait());
    }
    let pf_ns = pf_t0.elapsed().as_nanos() as u64;
    // One snapshot drives everything below: per-band latency quantiles
    // (stats → telemetry histograms) and the lane/trace gauges (metrics
    // registry) — no bench-side counter merging.
    let pf_snap = rt_pf.stats();
    let pf_metrics = rt_pf.metrics();
    let pf_lat_bands = &pf_snap.latency;
    let tele_events = pf_metrics.get("trace_events_recorded").unwrap_or(0);
    let tele_dropped = pf_metrics.get("trace_events_dropped").unwrap_or(0);
    assert!(
        tele_events > 0,
        "tracing was enabled for the flood but no events were recorded"
    );
    let band_names = ["high", "normal", "low"];
    let mut tele_json = format!(
        "\"workers\": {pf_workers}, \"events\": {tele_events}, \"dropped\": {tele_dropped}"
    );
    for (b, name) in band_names.iter().enumerate() {
        let q = pf_lat_bands.submit_to_start[b];
        let r = pf_lat_bands.start_to_done[b];
        tele_json.push_str(&format!(
            ", \"p50_{name}_ns\": {}, \"p99_{name}_ns\": {}, \"p999_{name}_ns\": {}, \
             \"run_p50_{name}_ns\": {}, \"run_p99_{name}_ns\": {}, \"run_p999_{name}_ns\": {}",
            q.p50_ns, q.p99_ns, q.p999_ns, r.p50_ns, r.p99_ns, r.p999_ns
        ));
    }
    let pf_band_json: Vec<String> = PF_BANDS
        .iter()
        .map(|p| {
            let b = &pf_lat[p.band()];
            let (sum, max, count) = (
                b[0].load(Ordering::Relaxed),
                b[1].load(Ordering::Relaxed),
                b[2].load(Ordering::Relaxed).max(1),
            );
            format!(
                "{{\"band\": \"{}\", \"jobs\": {count}, \"mean_latency_ns\": {}, \
                 \"max_latency_ns\": {max}}}",
                p.label(),
                sum / count
            )
        })
        .collect();
    let pf_lane_json = lanes_json(&pf_metrics);
    let pf_placement = (0usize..)
        .map_while(|n| {
            pf_metrics
                .get(&format!("inject_lane{n}_submitted"))
                .map(|s| format!("node{n}:{s}"))
        })
        .collect::<Vec<_>>()
        .join(" ");
    let pf_mean_ms = |p: Priority| {
        let b = &pf_lat[p.band()];
        b[0].load(Ordering::Relaxed) as f64 / b[2].load(Ordering::Relaxed).max(1) as f64 / 1e6
    };

    // --- fault_tolerance: lifecycle robustness under a panic storm ------
    // PR 8's headline: a submit flood where every 100th job panics. The
    // pool must re-raise each payload at exactly its own join — never at a
    // neighbour's handle, never killing a worker — and keep serving at
    // flood throughput. A cancel wave (one shared token over a second
    // flood, cancelled mid-drain) and a deadline shed (already-expired
    // admissions) exercise the other two lifecycle exits; the counters
    // land in the snapshot and the pool proves it is still alive after.
    let ft_workers = 8usize;
    let rt_ft = Arc::new(SchedPolicy::DistributedAggregated.build_runtime_with(
        ft_workers,
        VictimPolicy::Hierarchical,
        Topology::two_level(ft_workers, 4),
    ));
    let ft_jobs = 5_000u64;
    // The storm's panics are planned: silence the default hook for its
    // duration so 50 backtraces don't bury the snapshot table.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let ft_t0 = Instant::now();
    let ft_handles: Vec<_> = (0..ft_jobs)
        .map(|i| {
            rt_ft
                .submit(move |_ctx| {
                    if i % 100 == 7 {
                        panic!("fault_tolerance storm: planned panic in job {i}");
                    }
                    busy_work(i, 400)
                })
                .expect("Block admission never rejects")
        })
        .collect();
    let (mut ft_ok, mut ft_caught) = (0u64, 0u64);
    for h in ft_handles {
        match catch_unwind(AssertUnwindSafe(|| h.wait())) {
            Ok(v) => {
                std::hint::black_box(v);
                ft_ok += 1;
            }
            Err(_) => ft_caught += 1,
        }
    }
    let ft_ns = ft_t0.elapsed().as_nanos() as u64;
    std::panic::set_hook(prev_hook);
    let ft_jobs_per_s = ft_jobs as f64 / ft_ns as f64 * 1e9;
    assert_eq!(
        ft_caught,
        ft_jobs / 100,
        "every planned panic re-raises at exactly its own join"
    );
    assert_eq!(ft_ok + ft_caught, ft_jobs);
    // Cancel wave: a second flood under one shared token, cancelled from
    // the submitter mid-drain. Every handle resolves — jobs that slipped
    // in before the cancel ran, the rest report Err(Cancelled).
    let ft_tok = CancelToken::new();
    let cancel_handles: Vec<_> = (0..ft_jobs)
        .map(|i| {
            rt_ft
                .task()
                .cancel_token(&ft_tok)
                .submit(move |_ctx| busy_work(i, 400))
                .expect("Block admission never rejects")
        })
        .collect();
    ft_tok.cancel();
    let (mut ft_ran, mut ft_cancelled) = (0u64, 0u64);
    for h in cancel_handles {
        match h.join() {
            Ok(_) => ft_ran += 1,
            Err(SubmitError::Cancelled) => ft_cancelled += 1,
            Err(e) => panic!("unexpected lifecycle exit: {e}"),
        }
    }
    assert_eq!(ft_ran + ft_cancelled, ft_jobs, "no handle lost in the wave");
    // Deadline shed: already-expired admissions are refused typed, not run.
    let mut ft_expired = 0u64;
    for i in 0..200u64 {
        match rt_ft.task().deadline(Duration::ZERO).submit(move |_ctx| i) {
            Err(SubmitError::Expired) => ft_expired += 1,
            other => drop(other),
        }
    }
    assert_eq!(ft_expired, 200, "zero deadlines shed at admission");
    let ft_stats = rt_ft.stats();
    // Pool alive after the storm: the same workers still run a scope.
    assert_eq!(rt_ft.scope(|c| fib(c, 10)), 55);

    // --- offload_pipeline: the accelerator track end to end (PR 10) -----
    // P independent pipelines of S dependent stages, every stage routed
    // to the offload track: the engine uploads each handle on first use
    // (H2D), groups launches into batches behind the configured latency,
    // commits every completed write back (D2H), and successors only
    // become ready when the asynchronous completion stream drains.
    // Tracing is on, so the NORMAL-band submit→start histogram times
    // exactly that completion-drain hop (engine → inject lane → worker):
    // its p50/p99 are the snapshot's drain-latency metrics.
    let op_workers = 8usize;
    let op_pipelines = 64usize;
    let op_stages = 32u64;
    let op_tun = xkaapi_core::OffloadTunables {
        launch_latency_us: 5,
        batch: 16,
        max_inflight: 4,
        ..Default::default()
    };
    let rt_op = Runtime::builder()
        .workers(op_workers)
        .offload_tunables(op_tun)
        .build();
    rt_op.set_tracing(true);
    let op_cells: Vec<Shared<u64>> = (0..op_pipelines).map(|_| Shared::new(0u64)).collect();
    let op_t0 = Instant::now();
    rt_op.scope(|ctx| {
        for h in &op_cells {
            for s in 0..op_stages {
                let hw = h.clone();
                ctx.task()
                    .access(h.exclusive())
                    .track(xkaapi_core::Track::Offload)
                    .spawn(move |t| *t.write(&hw) += s + 1);
            }
        }
    });
    let op_ns = op_t0.elapsed().as_nanos() as u64;
    let op_expected = op_stages * (op_stages + 1) / 2;
    for c in &op_cells {
        assert_eq!(*c.get(), op_expected, "offload pipeline checksum");
    }
    let op_tasks = op_pipelines as u64 * op_stages;
    let op_tasks_per_s = op_tasks as f64 / op_ns as f64 * 1e9;
    let op_stats = rt_op.stats();
    assert_eq!(op_stats.tasks_offloaded, op_tasks, "every stage offloaded");
    assert_eq!(
        op_stats.offload_completions, op_tasks,
        "every stage drained"
    );
    assert_eq!(
        op_stats.offload_h2d, op_pipelines as u64,
        "one upload per handle (resident set caches the rest)"
    );
    assert_eq!(op_stats.offload_d2h, op_tasks, "one commit per write stage");
    let op_drain = op_stats.latency.submit_to_start[1]; // NORMAL band

    let total_s = t0.elapsed().as_secs_f64();
    print_table(
        &format!("Perf snapshot ({workers} workers, {total_s:.1}s total)"),
        &["metric", "value", "detail"],
        &[
            vec![
                "fib spawn throughput".into(),
                format!("{fib_mtasks_per_s:.2} Mtasks/s"),
                format!(
                    "fib({fib_n}) = {tasks} joins in {:.2} ms",
                    fib_ns as f64 / 1e6
                ),
            ],
            vec![
                "foreach bandwidth".into(),
                format!("{foreach_gbs:.2} GB/s"),
                format!("{foreach_melems_per_s:.1} Melem/s saxpy over {n} f64"),
            ],
            vec![
                "cholesky".into(),
                format!("{chol_gflops:.2} GFlop/s"),
                format!("n={cn} nb={nb} in {:.2} ms", chol_ns as f64 / 1e6),
            ],
            vec![
                "recorded_replay".into(),
                format!("{replay_gflops:.2} GFlop/s"),
                format!(
                    "{} tasks -> {} groups (cp {}), replay {:.2} ms vs online {:.2} ms, \
                     0 pushes/replay",
                    rec_stats.tasks,
                    rec_stats.groups,
                    rec_stats.critical_path_len,
                    replay_ns as f64 / 1e6,
                    chol_ns as f64 / 1e6
                ),
            ],
            victim_rows[0].clone(),
            victim_rows[1].clone(),
            victim_rows[2].clone(),
            vec![
                "submit_flood".into(),
                format!("{:.2} Mjobs/s", sf_jobs_per_s / 1e6),
                format!(
                    "{sf_total} jobs from {sf_submitters} submitters in {:.2} ms; \
                     lane drains own {} / remote {}",
                    sf_ns as f64 / 1e6,
                    sf_stats.inject_own_lane,
                    sf_stats.inject_remote_lane
                ),
            ],
            vec![
                "priority_flood".into(),
                format!(
                    "mean lat H/N/L {:.2}/{:.2}/{:.2} ms",
                    pf_mean_ms(Priority::High),
                    pf_mean_ms(Priority::Normal),
                    pf_mean_ms(Priority::Low)
                ),
                format!(
                    "{} mixed-band jobs in {:.2} ms; lane placement {pf_placement}",
                    pf_per_band * 3,
                    pf_ns as f64 / 1e6,
                ),
            ],
            vec![
                "telemetry".into(),
                format!("{tele_events} events, {tele_dropped} dropped"),
                format!(
                    "submit→start p99 H/N/L {:.2}/{:.2}/{:.2} ms (priority_flood, live toggle)",
                    pf_lat_bands.submit_to_start[0].p99_ns as f64 / 1e6,
                    pf_lat_bands.submit_to_start[1].p99_ns as f64 / 1e6,
                    pf_lat_bands.submit_to_start[2].p99_ns as f64 / 1e6,
                ),
            ],
            vec![
                "fault_tolerance".into(),
                format!("{:.2} Mjobs/s under panics", ft_jobs_per_s / 1e6),
                format!(
                    "{ft_jobs} jobs / {ft_caught} panics re-raised in {:.2} ms; \
                     cancel wave ran {ft_ran} / skipped {ft_cancelled}; {ft_expired} expired",
                    ft_ns as f64 / 1e6
                ),
            ],
            vec![
                "offload_pipeline".into(),
                format!("{:.0} ktasks/s", op_tasks_per_s / 1e3),
                format!(
                    "{op_tasks} stages ({op_pipelines}×{op_stages}) in {:.2} ms; \
                     {} h2d / {} d2h / {} batches; drain p50/p99 {:.0}/{:.0} µs",
                    op_ns as f64 / 1e6,
                    op_stats.offload_h2d,
                    op_stats.offload_d2h,
                    op_stats.offload_batches,
                    op_drain.p50_ns as f64 / 1e3,
                    op_drain.p99_ns as f64 / 1e3,
                ),
            ],
        ],
    );

    if json {
        let body = format!(
            "{{\n  \"pr\": 10,\n  \"workers\": {workers},\n  \
             \"fib\": {{\"n\": {fib_n}, \"tasks\": {tasks}, \"ns\": {fib_ns}, \
             \"mtasks_per_s\": {fib_mtasks_per_s:.3}}},\n  \
             \"foreach\": {{\"elems\": {n}, \"ns\": {foreach_ns}, \
             \"gb_per_s\": {foreach_gbs:.3}, \"melems_per_s\": {foreach_melems_per_s:.3}}},\n  \
             \"cholesky\": {{\"n\": {cn}, \"nb\": {nb}, \"ns\": {chol_ns}, \
             \"gflops\": {chol_gflops:.3}}},\n  \
             \"recorded_replay\": {{\"n\": {cn}, \"nb\": {nb}, \"iters\": {replay_iters}, \
             \"tasks\": {}, \"edges\": {}, \"groups\": {}, \"fused_tasks\": {}, \
             \"critical_path_len\": {}, \"online_ns\": {chol_ns}, \"replay_ns\": {replay_ns}, \
             \"replay_gflops\": {replay_gflops:.3}, \"speedup_vs_online\": {replay_speedup:.3}, \
             \"dataflow_pushes\": {replay_pushes}}},\n  \
             \"steal_locality\": {{\"workers\": {vp_workers}, \"nodes\": 2, \"policies\": [\n    {}\n  ]}},\n  \
             \"submit_flood\": {{\"workers\": {sf_workers}, \"nodes\": 2, \
             \"submitters\": {sf_submitters}, \"jobs\": {sf_total}, \"ns\": {sf_ns}, \
             \"jobs_per_s\": {sf_jobs_per_s:.0}, \"checksum\": {sf_sum}, \
             \"jobs_submitted\": {}, \"jobs_rejected\": {}, \
             \"inject_own_lane\": {}, \"inject_remote_lane\": {}, \
             \"lanes\": [{lane_json}]}},\n  \
             \"priority_flood\": {{\"workers\": {pf_workers}, \"nodes\": 2, \
             \"jobs\": {}, \"ns\": {pf_ns}, \"checksum\": {pf_sum}, \
             \"bands\": [\n    {}\n  ], \
             \"lanes\": [{pf_lane_json}]}},\n  \
             \"telemetry\": {{{tele_json}}},\n  \
             \"fault_tolerance\": {{\"workers\": {ft_workers}, \"jobs\": {ft_jobs}, \
             \"ns\": {ft_ns}, \"jobs_per_s\": {ft_jobs_per_s:.0}, \
             \"panics_injected\": {ft_caught}, \"tasks_panicked\": {}, \
             \"cancel_ran\": {ft_ran}, \"cancel_skipped\": {ft_cancelled}, \
             \"tasks_cancelled\": {}, \"jobs_expired\": {}, \
             \"callback_panics\": {}}},\n  \
             \"offload_pipeline\": {{\"workers\": {op_workers}, \
             \"pipelines\": {op_pipelines}, \"stages\": {op_stages}, \
             \"offload_tasks\": {op_tasks}, \"offload_ns\": {op_ns}, \
             \"offload_tasks_per_s\": {op_tasks_per_s:.0}, \
             \"h2d\": {}, \"d2h\": {}, \"batches\": {}, \"completions\": {}, \
             \"drain_p50_ns\": {}, \"drain_p99_ns\": {}}}\n}}\n",
            rec_stats.tasks,
            rec_stats.edges,
            rec_stats.groups,
            rec_stats.fused_tasks,
            rec_stats.critical_path_len,
            victim_json.join(",\n    "),
            sf_stats.jobs_submitted,
            sf_stats.jobs_rejected,
            sf_stats.inject_own_lane,
            sf_stats.inject_remote_lane,
            pf_per_band * 3,
            pf_band_json.join(",\n    "),
            ft_stats.tasks_panicked,
            ft_stats.tasks_cancelled,
            ft_stats.jobs_expired,
            ft_stats.callback_panics,
            op_stats.offload_h2d,
            op_stats.offload_d2h,
            op_stats.offload_batches,
            op_stats.offload_completions,
            op_drain.p50_ns,
            op_drain.p99_ns,
        );
        std::fs::write(SNAPSHOT_FILE, body).expect("write perf snapshot");
        println!("\nwrote {SNAPSHOT_FILE}");

        // Schedule exports (CI artifacts next to the snapshot): the
        // recorded DAG (DOT + predicted chrome-trace) and one measured
        // replay (executed DOT + real chrome-trace).
        rec.load(&orig);
        let (res, trace) = rec.replay_traced(&rt);
        res.unwrap();
        for (file, contents) in [
            ("cholesky_recorded.dot", rec.dag().to_dot()),
            ("cholesky_recorded_trace.json", rec.dag().to_chrome_trace()),
            ("cholesky_executed.dot", rec.dag().executed_dot(&trace)),
            ("cholesky_replay_trace.json", trace.to_chrome_trace()),
        ] {
            std::fs::write(file, contents).expect("write schedule export");
            println!("wrote {file}");
        }

        // The offload_pipeline run executed with tracing on: its event
        // trace carries the track lanes — H2D/D2H transfer spans, batched
        // launch spans and completion markers on the "offload" lane, next
        // to the worker lanes draining the completions. Perfetto-loadable;
        // CI uploads it with the snapshot.
        let op_trace = rt_op.take_trace();
        assert!(
            op_trace.total_events() > 0,
            "offload run traced but exported no events"
        );
        std::fs::write("offload_trace.json", op_trace.to_chrome_trace())
            .expect("write offload trace");
        println!(
            "wrote offload_trace.json ({} events)",
            op_trace.total_events()
        );
    }

    if check {
        use xkaapi_bench::check::{self, GateMetric, GATE_METRICS};
        let fresh = [
            fib_mtasks_per_s,
            foreach_gbs,
            chol_gflops,
            sf_jobs_per_s,
            replay_speedup,
        ];
        let fresh: Vec<GateMetric> = GATE_METRICS
            .iter()
            .zip(fresh)
            .map(|(&(bench, key), value)| GateMetric { bench, key, value })
            .collect();
        let (pr, path) = check::find_latest_snapshot(std::path::Path::new("."))
            .expect("--check needs a committed BENCH_PR*.json to gate against");
        let text = std::fs::read_to_string(&path).expect("read baseline snapshot");
        let baseline = check::extract_metrics(&text);
        let tol = check::tolerance_from_env();
        let regressions = check::compare(&baseline, &fresh, tol);
        println!(
            "\n## Regression gate vs {} (tolerance {:.0}%)\n",
            path.display(),
            tol * 100.0
        );
        for b in &baseline {
            let f = fresh.iter().find(|f| f.key == b.key).unwrap();
            println!(
                "  {:<14} {:<14} baseline {:>12.3}  fresh {:>12.3}  ({:+.1}%)",
                b.bench,
                b.key,
                b.value,
                f.value,
                (f.value / b.value - 1.0) * 100.0
            );
        }
        if regressions.is_empty() {
            println!("\ngate PASS: no metric lost more than {:.0}%", tol * 100.0);
        } else {
            for r in &regressions {
                eprintln!(
                    "gate FAIL: {} {} regressed {:.1}% vs BENCH_PR{pr}.json \
                     (baseline {:.3}, fresh {:.3})",
                    r.bench,
                    r.key,
                    -r.change() * 100.0,
                    r.baseline,
                    r.fresh
                );
            }
            std::process::exit(1);
        }
    }
}
