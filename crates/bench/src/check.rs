//! The permanent perf-regression gate behind `smoke -- --check`.
//!
//! Every PR commits its perf snapshot as `BENCH_PR<N>.json`; the gate
//! re-measures the headline metrics and compares them against the
//! **highest-numbered committed snapshot**, failing when any metric lost
//! more than the tolerance (default 10%, `XKAAPI_BENCH_TOLERANCE`
//! overrides). The JSON is parsed by unique leaf key — each gated metric
//! key appears exactly once per snapshot file — so the gate needs no JSON
//! dependency and keeps working across snapshot-schema growth, as long as
//! the leaf keys stay stable.
//!
//! Missing metrics are skipped, not failed: older snapshots predate some
//! benches (`jobs_per_s` only exists from PR 4 on), and a gate that
//! refuses to compare against history would have to be deleted the first
//! time the snapshot schema grows.

use std::path::{Path, PathBuf};

/// The gated metrics: `(bench, unique JSON leaf key)`.
///
/// Each key appears exactly once in a snapshot file, so a substring
/// search finds the right number without a JSON parser.
/// `speedup_vs_online` (recorded-replay vs online Cholesky of PR 7)
/// joins the gate from PR 7 snapshots on; older baselines simply skip
/// it. It is gated as a *ratio* deliberately: both sides are measured
/// seconds apart in the same process, so host-load noise cancels where
/// absolute GFlop/s on a timesliced single-core runner swing ±40%.
pub const GATE_METRICS: [(&str, &str); 5] = [
    ("fib", "mtasks_per_s"),
    ("foreach", "gb_per_s"),
    ("cholesky", "gflops"),
    ("submit_flood", "jobs_per_s"),
    ("recorded_replay", "speedup_vs_online"),
];

/// Relative loss a metric may show before the gate fails (0.10 = 10%).
pub const DEFAULT_TOLERANCE: f64 = 0.10;

/// Environment override for the gate tolerance (a fraction, e.g. `0.25`).
pub const TOLERANCE_ENV: &str = "XKAAPI_BENCH_TOLERANCE";

/// One gated measurement, either read from a snapshot or freshly run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GateMetric {
    /// Bench the metric belongs to (`fib`, `foreach`, …).
    pub bench: &'static str,
    /// JSON leaf key (`mtasks_per_s`, …) — higher is better for all of them.
    pub key: &'static str,
    /// Measured value.
    pub value: f64,
}

/// One gate failure: `fresh` lost more than `tol` relative to `baseline`.
#[derive(Clone, Copy, Debug)]
pub struct Regression {
    /// Bench that regressed.
    pub bench: &'static str,
    /// Leaf key of the regressed metric.
    pub key: &'static str,
    /// Value recorded in the committed snapshot.
    pub baseline: f64,
    /// Value measured by this run.
    pub fresh: f64,
}

impl Regression {
    /// Relative change of `fresh` vs `baseline` (negative = loss).
    pub fn change(&self) -> f64 {
        self.fresh / self.baseline - 1.0
    }
}

/// Parse the number following the unique `"key":` occurrence in `json`.
///
/// Returns `None` when the key is absent or not followed by a number.
pub fn leaf_value(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)?;
    let rest = json[at + pat.len()..].trim_start();
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extract every gated metric present in a snapshot's JSON text.
pub fn extract_metrics(json: &str) -> Vec<GateMetric> {
    GATE_METRICS
        .iter()
        .filter_map(|&(bench, key)| {
            leaf_value(json, key).map(|value| GateMetric { bench, key, value })
        })
        .collect()
}

/// Find the highest-numbered `BENCH_PR<N>.json` in `dir`.
pub fn find_latest_snapshot(dir: &Path) -> Option<(u32, PathBuf)> {
    let mut best: Option<(u32, PathBuf)> = None;
    for entry in dir.read_dir().ok()?.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let n: u32 = match name
            .strip_prefix("BENCH_PR")
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse().ok())
        {
            Some(n) => n,
            None => continue,
        };
        if best.as_ref().is_none_or(|(b, _)| n > *b) {
            best = Some((n, entry.path()));
        }
    }
    best
}

/// Gate tolerance from [`TOLERANCE_ENV`]: a fraction in `(0, 10]`; unset,
/// junk, or out-of-range values fall back to [`DEFAULT_TOLERANCE`].
pub fn tolerance_from_env() -> f64 {
    tolerance_from(std::env::var(TOLERANCE_ENV).ok().as_deref())
}

/// Pure core of [`tolerance_from_env`], testable without touching the
/// process environment.
pub fn tolerance_from(raw: Option<&str>) -> f64 {
    match raw.and_then(|s| s.trim().parse::<f64>().ok()) {
        Some(t) if t > 0.0 && t <= 10.0 => t,
        _ => DEFAULT_TOLERANCE,
    }
}

/// Compare a fresh run against a committed baseline.
///
/// Returns one [`Regression`] per metric whose fresh value dropped below
/// `baseline × (1 − tol)`. Metrics absent from either side are skipped
/// (old snapshots predate some benches).
pub fn compare(baseline: &[GateMetric], fresh: &[GateMetric], tol: f64) -> Vec<Regression> {
    baseline
        .iter()
        .filter_map(|b| {
            let f = fresh.iter().find(|f| f.key == b.key)?;
            (b.value > 0.0 && f.value < b.value * (1.0 - tol)).then_some(Regression {
                bench: b.bench,
                key: b.key,
                baseline: b.value,
                fresh: f.value,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SNAP: &str = r#"{
  "pr": 7,
  "fib": {"n": 22, "ns": 2500000, "mtasks_per_s": 11.462},
  "foreach": {"gb_per_s": 19.7, "melems_per_s": 821.0},
  "cholesky": {"gflops": 5.78},
  "submit_flood": {"jobs_per_s": 1157000, "checksum": 12},
  "recorded_replay": {"iters": 8, "replay_gflops": 6.91, "speedup_vs_online": 1.29}
}"#;

    #[test]
    fn leaf_parsing_reads_each_gated_key() {
        assert_eq!(leaf_value(SNAP, "mtasks_per_s"), Some(11.462));
        assert_eq!(leaf_value(SNAP, "gb_per_s"), Some(19.7));
        assert_eq!(leaf_value(SNAP, "gflops"), Some(5.78));
        assert_eq!(leaf_value(SNAP, "jobs_per_s"), Some(1_157_000.0));
        assert_eq!(leaf_value(SNAP, "speedup_vs_online"), Some(1.29));
        assert_eq!(leaf_value(SNAP, "absent"), None);
        assert_eq!(leaf_value("{\"gflops\": junk}", "gflops"), None);
    }

    #[test]
    fn extract_skips_missing_metrics() {
        let old = r#"{"pr": 1, "fib": {"mtasks_per_s": 13.78}, "cholesky": {"gflops": 6.77}}"#;
        let m = extract_metrics(old);
        assert_eq!(m.len(), 2);
        assert!(m.iter().all(|g| g.key != "jobs_per_s"));
        assert!(
            m.iter().all(|g| g.key != "speedup_vs_online"),
            "pre-PR-7 snapshots must not fail the gate for lacking speedup_vs_online"
        );
    }

    #[test]
    fn compare_flags_only_losses_beyond_tolerance() {
        let base = extract_metrics(SNAP);
        // Identical run: clean.
        assert!(compare(&base, &base, 0.10).is_empty());
        // 5% loss everywhere: inside the default 10% tolerance.
        let slower: Vec<GateMetric> = base
            .iter()
            .map(|g| GateMetric {
                value: g.value * 0.95,
                ..*g
            })
            .collect();
        assert!(compare(&base, &slower, 0.10).is_empty());
        // 20% loss on one metric: flagged, with the right direction.
        let mut bad = base.clone();
        bad[2].value *= 0.8;
        let regs = compare(&base, &bad, 0.10);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].bench, "cholesky");
        assert!(regs[0].change() < -0.15);
        // Gains are never flagged.
        let faster: Vec<GateMetric> = base
            .iter()
            .map(|g| GateMetric {
                value: g.value * 2.0,
                ..*g
            })
            .collect();
        assert!(compare(&base, &faster, 0.10).is_empty());
    }

    #[test]
    fn tolerance_parses_and_falls_back_on_junk() {
        assert_eq!(tolerance_from(None), DEFAULT_TOLERANCE);
        assert_eq!(tolerance_from(Some("0.25")), 0.25);
        assert_eq!(tolerance_from(Some(" 0.5 ")), 0.5);
        assert_eq!(tolerance_from(Some("banana")), DEFAULT_TOLERANCE);
        assert_eq!(tolerance_from(Some("-1")), DEFAULT_TOLERANCE);
        assert_eq!(tolerance_from(Some("0")), DEFAULT_TOLERANCE);
        assert_eq!(tolerance_from(Some("999")), DEFAULT_TOLERANCE);
    }

    #[test]
    fn latest_snapshot_picks_highest_pr() {
        let dir = std::env::temp_dir().join(format!("xkaapi-gate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for n in [1, 4, 11] {
            std::fs::write(dir.join(format!("BENCH_PR{n}.json")), "{}").unwrap();
        }
        std::fs::write(dir.join("BENCH_PRx.json"), "{}").unwrap();
        std::fs::write(dir.join("notes.md"), "").unwrap();
        let (n, path) = find_latest_snapshot(&dir).unwrap();
        assert_eq!(n, 11);
        assert!(path.ends_with("BENCH_PR11.json"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
