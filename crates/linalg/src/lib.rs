//! Dense linear-algebra substrate: tiled matrices, blocked Cholesky kernels
//! and the four `PLASMA_dpotrf_Tile`-style drivers the paper's Fig. 2
//! compares (sequential, QUARK-API on either backend, direct X-Kaapi
//! data-flow, PLASMA-static).

#![warn(missing_docs)]

pub mod cholesky;
pub mod kernels;
pub mod pipeline;
pub mod tiled;

pub use cholesky::{
    cholesky_ops, cholesky_quark, cholesky_seq, cholesky_static, cholesky_xkaapi, CholOp,
    RecordedCholesky,
};
pub use kernels::{flops, NotPositiveDefinite};
pub use pipeline::{power_sweep_seq, power_sweep_xkaapi};
pub use tiled::{tile_key, TiledMatrix};
