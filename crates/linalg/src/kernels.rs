//! Tile kernels for the blocked Cholesky factorisation: `potrf`, `trsm`,
//! `syrk`, `gemm` on column-major `nb × nb` f64 tiles.
//!
//! These are plain-Rust kernels with cache-conscious loop orders — not
//! MKL-class, but every runtime under comparison shares them, so the
//! runtime-vs-runtime ratios of Fig. 2 are preserved (see DESIGN.md §1).

/// Error raised when a diagonal tile is not positive definite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotPositiveDefinite {
    /// Column within the tile where the pivot failed.
    pub column: usize,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix not positive definite (tile column {})",
            self.column
        )
    }
}

impl std::error::Error for NotPositiveDefinite {}

#[inline]
fn at(i: usize, j: usize, ld: usize) -> usize {
    i + j * ld
}

/// Cholesky factorisation of a diagonal tile, in place, lower triangular:
/// `A = L·Lᵀ`, `L` stored in the lower part of `a`.
pub fn potrf(a: &mut [f64], nb: usize) -> Result<(), NotPositiveDefinite> {
    debug_assert_eq!(a.len(), nb * nb);
    for j in 0..nb {
        let mut d = a[at(j, j, nb)];
        for t in 0..j {
            let l = a[at(j, t, nb)];
            d -= l * l;
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(NotPositiveDefinite { column: j });
        }
        let ljj = d.sqrt();
        a[at(j, j, nb)] = ljj;
        let inv = 1.0 / ljj;
        for i in j + 1..nb {
            let mut v = a[at(i, j, nb)];
            for t in 0..j {
                v -= a[at(i, t, nb)] * a[at(j, t, nb)];
            }
            a[at(i, j, nb)] = v * inv;
        }
    }
    Ok(())
}

/// Triangular solve `B := B · L⁻ᵀ` (right side, lower, transposed) where
/// `l` holds the factor of the diagonal tile. Used on sub-diagonal tiles.
pub fn trsm(l: &[f64], b: &mut [f64], nb: usize) {
    debug_assert_eq!(l.len(), nb * nb);
    debug_assert_eq!(b.len(), nb * nb);
    // Column by column of X (X·Lᵀ = B): X[:,j] = (B[:,j] - Σ_{t<j} X[:,t]·L[j,t]) / L[j,j]
    for j in 0..nb {
        let inv = 1.0 / l[at(j, j, nb)];
        for t in 0..j {
            let ljt = l[at(j, t, nb)];
            if ljt == 0.0 {
                continue;
            }
            let (head, tail) = b.split_at_mut(j * nb);
            let xt = &head[t * nb..t * nb + nb];
            let bj = &mut tail[..nb];
            for i in 0..nb {
                bj[i] -= xt[i] * ljt;
            }
        }
        for i in 0..nb {
            b[at(i, j, nb)] *= inv;
        }
    }
}

/// Symmetric rank-k update of a diagonal tile: `C := C − A·Aᵀ` (lower part).
pub fn syrk(a: &[f64], c: &mut [f64], nb: usize) {
    debug_assert_eq!(a.len(), nb * nb);
    debug_assert_eq!(c.len(), nb * nb);
    for j in 0..nb {
        for t in 0..nb {
            let ajt = a[at(j, t, nb)];
            if ajt == 0.0 {
                continue;
            }
            let acol = &a[t * nb..t * nb + nb];
            let ccol = &mut c[j * nb..j * nb + nb];
            // lower part only: rows i >= j
            for i in j..nb {
                ccol[i] -= acol[i] * ajt;
            }
        }
    }
}

/// General update `C := C − A·Bᵀ` (tile gemm of the Cholesky trailing
/// update; `A` is tile (m,k), `B` is tile (n,k), `C` is tile (m,n)).
pub fn gemm(a: &[f64], b: &[f64], c: &mut [f64], nb: usize) {
    debug_assert_eq!(a.len(), nb * nb);
    debug_assert_eq!(b.len(), nb * nb);
    debug_assert_eq!(c.len(), nb * nb);
    for j in 0..nb {
        let ccol = &mut c[j * nb..j * nb + nb];
        for t in 0..nb {
            let bjt = b[at(j, t, nb)];
            if bjt == 0.0 {
                continue;
            }
            let acol = &a[t * nb..t * nb + nb];
            for i in 0..nb {
                ccol[i] -= acol[i] * bjt;
            }
        }
    }
}

/// Flop counts of the kernels (for GFlop/s reporting, PLASMA conventions).
pub mod flops {
    /// `potrf` on an `nb`-tile: n³/3 + n²/2 + n/6.
    pub fn potrf(nb: usize) -> f64 {
        let n = nb as f64;
        n * n * n / 3.0 + n * n / 2.0 + n / 6.0
    }

    /// `trsm` on an `nb`-tile: n³.
    pub fn trsm(nb: usize) -> f64 {
        let n = nb as f64;
        n * n * n
    }

    /// `syrk` on an `nb`-tile: n³ (lower half ≈ n³, counting mul+add).
    pub fn syrk(nb: usize) -> f64 {
        let n = nb as f64;
        n * n * (n + 1.0)
    }

    /// `gemm` on an `nb`-tile: 2n³.
    pub fn gemm(nb: usize) -> f64 {
        let n = nb as f64;
        2.0 * n * n * n
    }

    /// Total flops of an `n × n` Cholesky: n³/3 (+ lower-order terms).
    pub fn cholesky(n: usize) -> f64 {
        let n = n as f64;
        n * n * n / 3.0 + n * n / 2.0 + n / 6.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_cholesky(a: &[f64], n: usize) -> Vec<f64> {
        let mut l = vec![0.0; n * n];
        for j in 0..n {
            let mut d = a[at(j, j, n)];
            for t in 0..j {
                d -= l[at(j, t, n)] * l[at(j, t, n)];
            }
            l[at(j, j, n)] = d.sqrt();
            for i in j + 1..n {
                let mut v = a[at(i, j, n)];
                for t in 0..j {
                    v -= l[at(i, t, n)] * l[at(j, t, n)];
                }
                l[at(i, j, n)] = v / l[at(j, j, n)];
            }
        }
        l
    }

    fn spd(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let v = rng() - 0.5;
                a[at(i, j, n)] = v;
                a[at(j, i, n)] = v;
            }
        }
        for i in 0..n {
            a[at(i, i, n)] += n as f64; // diagonal dominance => SPD
        }
        a
    }

    fn max_abs_diff_lower(a: &[f64], b: &[f64], n: usize) -> f64 {
        let mut m: f64 = 0.0;
        for j in 0..n {
            for i in j..n {
                m = m.max((a[at(i, j, n)] - b[at(i, j, n)]).abs());
            }
        }
        m
    }

    #[test]
    fn potrf_matches_naive() {
        let n = 24;
        let a = spd(n, 42);
        let mut tile = a.clone();
        potrf(&mut tile, n).unwrap();
        let l = naive_cholesky(&a, n);
        assert!(max_abs_diff_lower(&tile, &l, n) < 1e-9);
    }

    #[test]
    fn potrf_rejects_indefinite() {
        let n = 4;
        let mut a = vec![0.0; n * n];
        a[0] = -1.0;
        assert!(potrf(&mut a, n).is_err());
    }

    #[test]
    fn trsm_solves_triangular_system() {
        let n = 16;
        let a = spd(n, 7);
        let mut l = a.clone();
        potrf(&mut l, n).unwrap();
        // Build B = X_true * L^T, solve, compare.
        let mut x_true = vec![0.0; n * n];
        for (i, v) in x_true.iter_mut().enumerate() {
            *v = (i % 13) as f64 - 6.0;
        }
        let mut b = vec![0.0; n * n];
        for j in 0..n {
            for i in 0..n {
                let mut s = 0.0;
                for t in j..n {
                    // (L^T)[t][j] = L[t][j]... careful: B = X * L^T =>
                    // B[i,j] = sum_t X[i,t] * L^T[t,j] = sum_t X[i,t] * L[j,t]
                    let _ = t;
                }
                for t in 0..=j {
                    s += x_true[at(i, t, n)] * l[at(j, t, n)];
                }
                b[at(i, j, n)] = s;
            }
        }
        trsm(&l, &mut b, n);
        let mut max: f64 = 0.0;
        for i in 0..n * n {
            max = max.max((b[i] - x_true[i]).abs());
        }
        assert!(max < 1e-9, "max err {max}");
    }

    #[test]
    fn syrk_updates_lower() {
        let n = 8;
        let a: Vec<f64> = (0..n * n).map(|i| (i % 5) as f64 - 2.0).collect();
        let mut c = vec![0.0; n * n];
        syrk(&a, &mut c, n);
        for j in 0..n {
            for i in j..n {
                let mut expect = 0.0;
                for t in 0..n {
                    expect -= a[at(i, t, n)] * a[at(j, t, n)];
                }
                assert!((c[at(i, j, n)] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gemm_is_c_minus_abt() {
        let n = 8;
        let a: Vec<f64> = (0..n * n).map(|i| (i % 7) as f64).collect();
        let b: Vec<f64> = (0..n * n).map(|i| (i % 3) as f64 - 1.0).collect();
        let mut c: Vec<f64> = (0..n * n).map(|i| i as f64).collect();
        let c0 = c.clone();
        gemm(&a, &b, &mut c, n);
        for j in 0..n {
            for i in 0..n {
                let mut expect = c0[at(i, j, n)];
                for t in 0..n {
                    expect -= a[at(i, t, n)] * b[at(j, t, n)];
                }
                assert!((c[at(i, j, n)] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn flop_counts_scale() {
        assert!(flops::gemm(128) > flops::trsm(128));
        assert!((flops::cholesky(3000) / 1e9 - 9.0).abs() < 0.5); // ≈ 9 Gflop
    }
}
