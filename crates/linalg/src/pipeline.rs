//! A renaming-adopting iterative kernel: dense power iteration
//! (`y = A·x`, normalise, repeat) expressed as whole-vector write-only
//! tasks over **renameable [`Partitioned`] handles** — the ROADMAP
//! follow-up of adopting `write_all`/`view_of` in the linalg kernels
//! (`DESIGN.md` §2), spawned through the attribute-carrying task builder
//! (`DESIGN.md` §5).
//!
//! Why renaming matters here: each round fully overwrites `y` and then
//! `x`, and a *probe* task reads every round's `y` (a residual/telemetry
//! consumer). Without renaming, round `r+1`'s matvec serialises behind
//! round `r`'s probe (write-after-read on `y`); with renaming the writer
//! gets a fresh version buffer and the probe of round `r` overlaps the
//! matvec of round `r+1` — the war-chain pipeline, on a real kernel.

use std::sync::atomic::{AtomicU64, Ordering};
use xkaapi_core::{AccessMode, Partitioned, Priority, Region, Runtime};

/// Order-independent checksum of a vector (bit-pattern sum, commutative).
fn probe_sum(v: &[f64]) -> u64 {
    v.iter().fold(0u64, |acc, x| acc.wrapping_add(x.to_bits()))
}

fn matvec(a: &[f64], n: usize, x: &[f64], y: &mut [f64]) {
    for i in 0..n {
        let row = &a[i * n..(i + 1) * n];
        let mut acc = 0.0;
        for j in 0..n {
            acc += row[j] * x[j];
        }
        y[i] = acc;
    }
}

fn normalize(y: &[f64], x: &mut [f64]) {
    let scale = y.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-300);
    for (xi, yi) in x.iter_mut().zip(y) {
        *xi = yi / scale;
    }
}

/// Sequential reference: `rounds` power-iteration steps of the `n × n`
/// row-major matrix `a`. Returns the final iterate and the accumulated
/// probe checksum over every round's `y`.
pub fn power_sweep_seq(a: &[f64], n: usize, rounds: usize) -> (Vec<f64>, u64) {
    assert_eq!(a.len(), n * n);
    let mut x = vec![1.0; n];
    let mut y = vec![0.0; n];
    let mut probe = 0u64;
    for _ in 0..rounds {
        matvec(a, n, &x, &mut y);
        probe = probe.wrapping_add(probe_sum(&y));
        normalize(&y, &mut x);
    }
    (x, probe)
}

/// Data-flow power iteration over renameable [`Partitioned`] vectors.
///
/// Per round, three tasks spawned through `ctx.task()`:
///
/// * **matvec** — reads `x`, declares [`Partitioned::write_all`] on `y`
///   (renameable: a fresh version buffer, no WAR edge to the previous
///   round's probe), high priority (it is the critical path);
/// * **probe** — reads `y`, folds an order-independent checksum
///   (low priority: telemetry must never delay the chain);
/// * **normalise** — reads `y`, `write_all` on `x` (renameable too).
///
/// All buffers are resolved through [`Ctx::view_of`], which routes each
/// task to the version slot its access was bound to and commits renamed
/// writes on drop. The result is bit-identical to [`power_sweep_seq`]
/// under every scheduling policy and renaming setting (sequential
/// semantics).
///
/// [`Ctx::view_of`]: xkaapi_core::Ctx::view_of
pub fn power_sweep_xkaapi(rt: &Runtime, a: &[f64], n: usize, rounds: usize) -> (Vec<f64>, u64) {
    assert_eq!(a.len(), n * n);
    let x = Partitioned::renameable_with(vec![1.0f64; n], move || vec![0.0; n]);
    let y = Partitioned::renameable_with(vec![0.0f64; n], move || vec![0.0; n]);
    let probe = AtomicU64::new(0);
    rt.scope(|ctx| {
        let probe = &probe;
        for _ in 0..rounds {
            let (xr, yr) = (x.clone(), y.clone());
            ctx.task()
                .access(x.access(Region::All, AccessMode::Read))
                .access(y.write_all())
                .priority(Priority::High)
                .spawn(move |t| {
                    let xv = t.view_of(&xr);
                    let yv = t.view_of(&yr);
                    // Safety: whole-object read on x / renamed whole-object
                    // write on y; the scheduler serialises conflicts and the
                    // views are slot-routed.
                    let xs: &Vec<f64> = unsafe { &*xv.ptr() };
                    let ys: &mut Vec<f64> = unsafe { &mut *yv.ptr() };
                    if ys.len() != n {
                        *ys = vec![0.0; n]; // factory buffers are sized lazily
                    }
                    matvec(a, n, xs, ys);
                });
            let yr = y.clone();
            ctx.task()
                .access(y.access(Region::All, AccessMode::Read))
                .priority(Priority::Low)
                .spawn(move |t| {
                    let yv = t.view_of(&yr);
                    // Safety: read access on y, slot-routed.
                    let ys: &Vec<f64> = unsafe { &*yv.ptr() };
                    probe.fetch_add(probe_sum(ys), Ordering::Relaxed);
                });
            let (xr, yr) = (x.clone(), y.clone());
            ctx.task()
                .access(y.access(Region::All, AccessMode::Read))
                .access(x.write_all())
                .spawn(move |t| {
                    let yv = t.view_of(&yr);
                    let xv = t.view_of(&xr);
                    // Safety: as above, with the renamed write on x.
                    let ys: &Vec<f64> = unsafe { &*yv.ptr() };
                    let xs: &mut Vec<f64> = unsafe { &mut *xv.ptr() };
                    if xs.len() != n {
                        *xs = vec![0.0; n];
                    }
                    normalize(ys, xs);
                });
        }
    });
    (x.into_inner(), probe.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xkaapi_core::Runtime;

    fn test_matrix(n: usize) -> Vec<f64> {
        // Symmetric positive-ish matrix with a dominant eigenvector.
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                a[i * n + j] = 1.0 / (1.0 + (i as f64 - j as f64).abs());
            }
        }
        a
    }

    #[test]
    fn pipeline_matches_sequential_reference() {
        let n = 64;
        let a = test_matrix(n);
        let (x_ref, p_ref) = power_sweep_seq(&a, n, 12);
        for renaming in [true, false] {
            let rt = Runtime::builder().workers(4).renaming(renaming).build();
            let (x, p) = power_sweep_xkaapi(&rt, &a, n, 12);
            assert_eq!(p, p_ref, "probe checksum (renaming={renaming})");
            assert_eq!(x, x_ref, "iterate (renaming={renaming})");
        }
    }

    #[test]
    fn pipeline_actually_renames() {
        let n = 32;
        let a = test_matrix(n);
        let rt = Runtime::builder().workers(2).renaming(true).build();
        let _ = power_sweep_xkaapi(&rt, &a, n, 16);
        assert!(
            rt.stats().renames > 0,
            "whole-vector write_all accesses must be renamed"
        );
    }
}
