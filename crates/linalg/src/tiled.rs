//! Tiled matrix storage (PLASMA layout): an `n × n` symmetric matrix stored
//! as `nt × nt` column-major tiles of size `nb × nb`, plus SPD generators
//! and verification helpers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense symmetric matrix stored by tiles (only used on the lower
/// triangle by the Cholesky drivers; the full square of tiles is allocated
/// for simplicity).
pub struct TiledMatrix {
    /// Matrix order.
    pub n: usize,
    /// Tile size.
    pub nb: usize,
    /// Number of tile rows/columns (`ceil(n / nb)`).
    pub nt: usize,
    /// Tiles, row-major in tile coordinates, each tile column-major.
    tiles: Vec<Vec<f64>>,
}

impl TiledMatrix {
    /// Zero matrix of order `n` with tile size `nb` (n must be a multiple
    /// of nb for simplicity — generators pad as needed).
    pub fn zeros(n: usize, nb: usize) -> TiledMatrix {
        assert!(
            nb >= 1 && n >= 1 && n.is_multiple_of(nb),
            "n must be a multiple of nb"
        );
        let nt = n / nb;
        TiledMatrix {
            n,
            nb,
            nt,
            tiles: (0..nt * nt).map(|_| vec![0.0; nb * nb]).collect(),
        }
    }

    /// Tile index in the flat tile vector.
    #[inline]
    pub fn tile_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.nt && j < self.nt);
        i * self.nt + j
    }

    /// Borrow a tile.
    #[inline]
    pub fn tile(&self, i: usize, j: usize) -> &[f64] {
        &self.tiles[self.tile_index(i, j)]
    }

    /// Borrow a tile mutably.
    #[inline]
    pub fn tile_mut(&mut self, i: usize, j: usize) -> &mut [f64] {
        let idx = self.tile_index(i, j);
        &mut self.tiles[idx]
    }

    /// Raw pointer to a tile (for the parallel drivers, which guarantee
    /// exclusivity through their dependence protocols).
    #[inline]
    pub(crate) fn tile_ptr(&self, i: usize, j: usize) -> *mut f64 {
        self.tiles[self.tile_index(i, j)].as_ptr() as *mut f64
    }

    /// Element access (row `i`, column `j`).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (ti, tj) = (i / self.nb, j / self.nb);
        let (ri, rj) = (i % self.nb, j % self.nb);
        self.tile(ti, tj)[ri + rj * self.nb]
    }

    /// Element update.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        let nb = self.nb;
        let (ti, tj) = (i / nb, j / nb);
        let (ri, rj) = (i % nb, j % nb);
        self.tile_mut(ti, tj)[ri + rj * nb] = v;
    }

    /// Random symmetric positive-definite matrix (diagonally dominant).
    pub fn spd_random(n: usize, nb: usize, seed: u64) -> TiledMatrix {
        let mut m = TiledMatrix::zeros(n, nb);
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            for j in 0..=i {
                let v: f64 = rng.gen_range(-0.5..0.5);
                m.set(i, j, v);
                m.set(j, i, v);
            }
        }
        for i in 0..n {
            let v = m.get(i, i) + n as f64;
            m.set(i, i, v);
        }
        m
    }

    /// Deep copy.
    pub fn clone_matrix(&self) -> TiledMatrix {
        TiledMatrix {
            n: self.n,
            nb: self.nb,
            nt: self.nt,
            tiles: self.tiles.clone(),
        }
    }

    /// Max |aᵢⱼ − bᵢⱼ| over the lower triangle.
    pub fn max_abs_diff_lower(&self, other: &TiledMatrix) -> f64 {
        assert_eq!(self.n, other.n);
        let mut m: f64 = 0.0;
        for i in 0..self.n {
            for j in 0..=i {
                m = m.max((self.get(i, j) - other.get(i, j)).abs());
            }
        }
        m
    }

    /// Residual `max |A − L·Lᵀ|` over the lower triangle, where `self` holds
    /// the factor `L` (lower) and `a` the original matrix.
    pub fn cholesky_residual(&self, a: &TiledMatrix) -> f64 {
        assert_eq!(self.n, a.n);
        let n = self.n;
        let mut worst: f64 = 0.0;
        for i in 0..n {
            for j in 0..=i {
                let mut s = 0.0;
                for t in 0..=j {
                    s += self.get(i, t) * self.get(j, t);
                }
                worst = worst.max((s - a.get(i, j)).abs());
            }
        }
        worst
    }
}

/// Stable dependence key for tile `(i, j)` (used by the QUARK driver and
/// the data-flow driver alike).
#[inline]
pub fn tile_key(i: usize, j: usize) -> u64 {
    ((i as u64) << 32) | j as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_layout_roundtrip() {
        let mut m = TiledMatrix::zeros(8, 4);
        m.set(5, 2, 7.5);
        assert_eq!(m.get(5, 2), 7.5);
        assert_eq!(m.tile(1, 0)[1 + 2 * 4], 7.5); // row 5 = tile 1 row 1; col 2
    }

    #[test]
    fn spd_is_symmetric_and_dominant() {
        let m = TiledMatrix::spd_random(32, 8, 3);
        for i in 0..32 {
            for j in 0..32 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
            assert!(m.get(i, i) > 16.0);
        }
    }

    #[test]
    #[should_panic(expected = "multiple of nb")]
    fn rejects_ragged_tiling() {
        TiledMatrix::zeros(10, 4);
    }

    #[test]
    fn diff_lower_detects_change() {
        let a = TiledMatrix::spd_random(16, 4, 1);
        let mut b = a.clone_matrix();
        assert_eq!(a.max_abs_diff_lower(&b), 0.0);
        b.set(10, 3, b.get(10, 3) + 0.25);
        assert!((a.max_abs_diff_lower(&b) - 0.25).abs() < 1e-15);
    }
}
