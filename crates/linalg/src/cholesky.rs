//! Tiled right-looking Cholesky drivers — one per runtime under comparison
//! (the `PLASMA_dpotrf_Tile` of the reproduction):
//!
//! * [`cholesky_seq`] — sequential reference;
//! * [`cholesky_quark`] — the PLASMA algorithm written against the QUARK
//!   insertion API, runnable on both QUARK backends (centralized list or
//!   X-Kaapi) without modification — the Fig. 2 "PLASMA/Quark" vs "XKaapi"
//!   pair;
//! * [`cholesky_xkaapi`] — the same DAG expressed directly as X-Kaapi
//!   data-flow tasks over keyed tile regions;
//! * [`cholesky_static`] — PLASMA's statically scheduled variant: 1-D cyclic
//!   ownership by tile row plus a progress table of atomics, zero task
//!   management ("PLASMA/static" in Fig. 2).
//!
//! All drivers run the identical kernel set from [`crate::kernels`].

use crate::kernels::{gemm, potrf, syrk, trsm, NotPositiveDefinite};
use crate::tiled::{tile_key, TiledMatrix};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use xkaapi_core::{AccessMode, Partitioned, RecordedDag, Region, ReplayTrace, Runtime};
use xkaapi_quark::{Quark, QuarkDep};

/// One operation of the tiled Cholesky DAG (exported for the simulator).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CholOp {
    /// Factorise diagonal tile `(k,k)`.
    Potrf {
        /// Step.
        k: usize,
    },
    /// Solve tile `(m,k)` against the factor of `(k,k)`.
    Trsm {
        /// Step.
        k: usize,
        /// Tile row.
        m: usize,
    },
    /// Rank-k update of diagonal tile `(m,m)` with panel tile `(m,k)`.
    Syrk {
        /// Step.
        k: usize,
        /// Tile row.
        m: usize,
    },
    /// Update tile `(m,n)` with `(m,k)·(n,k)ᵀ`.
    Gemm {
        /// Step.
        k: usize,
        /// Tile row.
        m: usize,
        /// Tile column.
        n: usize,
    },
}

impl CholOp {
    /// `(key, is_write)` accesses of this operation, in tile keys.
    pub fn accesses(&self) -> Vec<(u64, bool)> {
        match *self {
            CholOp::Potrf { k } => vec![(tile_key(k, k), true)],
            CholOp::Trsm { k, m } => vec![(tile_key(k, k), false), (tile_key(m, k), true)],
            CholOp::Syrk { k, m } => vec![(tile_key(m, k), false), (tile_key(m, m), true)],
            CholOp::Gemm { k, m, n } => vec![
                (tile_key(m, k), false),
                (tile_key(n, k), false),
                (tile_key(m, n), true),
            ],
        }
    }
}

/// The operations of an `nt × nt` tiled Cholesky in sequential order.
pub fn cholesky_ops(nt: usize) -> Vec<CholOp> {
    let mut ops = Vec::new();
    for k in 0..nt {
        ops.push(CholOp::Potrf { k });
        for m in k + 1..nt {
            ops.push(CholOp::Trsm { k, m });
        }
        for m in k + 1..nt {
            ops.push(CholOp::Syrk { k, m });
            for n in k + 1..m {
                ops.push(CholOp::Gemm { k, m, n });
            }
        }
    }
    ops
}

/// Sequential tiled Cholesky (reference).
pub fn cholesky_seq(a: &mut TiledMatrix) -> Result<(), NotPositiveDefinite> {
    let nt = a.nt;
    let nb = a.nb;
    for k in 0..nt {
        potrf(a.tile_mut(k, k), nb)?;
        for m in k + 1..nt {
            // Split-borrow via raw pointers within one &mut: tiles are
            // disjoint allocations.
            let lkk = a.tile(k, k).to_vec();
            trsm(&lkk, a.tile_mut(m, k), nb);
        }
        for m in k + 1..nt {
            let amk = a.tile(m, k).to_vec();
            syrk(&amk, a.tile_mut(m, m), nb);
            for n in k + 1..m {
                let ank = a.tile(n, k).to_vec();
                gemm(&amk, &ank, a.tile_mut(m, n), nb);
            }
        }
    }
    Ok(())
}

/// Wrapper making a tile pointer transferable; the dependence protocol of
/// each driver guarantees exclusive/shared access discipline.
#[derive(Clone, Copy)]
struct TilePtr(*mut f64, usize);
unsafe impl Send for TilePtr {}
unsafe impl Sync for TilePtr {}

impl TilePtr {
    unsafe fn as_slice<'a>(self) -> &'a [f64] {
        unsafe { std::slice::from_raw_parts(self.0, self.1) }
    }

    #[allow(clippy::mut_from_ref)]
    unsafe fn as_mut_slice<'a>(self) -> &'a mut [f64] {
        unsafe { std::slice::from_raw_parts_mut(self.0, self.1) }
    }
}

/// PLASMA-style Cholesky through the QUARK insertion API (both backends).
///
/// Fails at the first non-SPD pivot *after* the session drains (the flag is
/// checked at the end; dependent kernels observe unchanged tiles).
pub fn cholesky_quark(q: &Quark, a: &mut TiledMatrix) -> Result<(), NotPositiveDefinite> {
    let nt = a.nt;
    let nb = a.nb;
    let failed = AtomicUsize::new(usize::MAX);
    q.session(|ctx| {
        for k in 0..nt {
            let tkk = TilePtr(a.tile_ptr(k, k), nb * nb);
            let failed = &failed;
            ctx.insert_task_prio([QuarkDep::inout(tile_key(k, k))], true, move |_| {
                // Safety: inout dependence on (k,k) makes us exclusive.
                if let Err(e) = potrf(unsafe { tkk.as_mut_slice() }, nb) {
                    failed.store(e.column, Ordering::Relaxed);
                }
            });
            for m in k + 1..nt {
                let tkk = TilePtr(a.tile_ptr(k, k), nb * nb);
                let tmk = TilePtr(a.tile_ptr(m, k), nb * nb);
                ctx.insert_task(
                    [
                        QuarkDep::input(tile_key(k, k)),
                        QuarkDep::inout(tile_key(m, k)),
                    ],
                    move |_| unsafe { trsm(tkk.as_slice(), tmk.as_mut_slice(), nb) },
                );
            }
            for m in k + 1..nt {
                let tmk = TilePtr(a.tile_ptr(m, k), nb * nb);
                let tmm = TilePtr(a.tile_ptr(m, m), nb * nb);
                ctx.insert_task(
                    [
                        QuarkDep::input(tile_key(m, k)),
                        QuarkDep::inout(tile_key(m, m)),
                    ],
                    move |_| unsafe { syrk(tmk.as_slice(), tmm.as_mut_slice(), nb) },
                );
                for n in k + 1..m {
                    let tmk = TilePtr(a.tile_ptr(m, k), nb * nb);
                    let tnk = TilePtr(a.tile_ptr(n, k), nb * nb);
                    let tmn = TilePtr(a.tile_ptr(m, n), nb * nb);
                    ctx.insert_task(
                        [
                            QuarkDep::input(tile_key(m, k)),
                            QuarkDep::input(tile_key(n, k)),
                            QuarkDep::inout(tile_key(m, n)),
                        ],
                        move |_| unsafe {
                            gemm(tmk.as_slice(), tnk.as_slice(), tmn.as_mut_slice(), nb)
                        },
                    );
                }
            }
        }
    });
    match failed.load(Ordering::Relaxed) {
        usize::MAX => Ok(()),
        column => Err(NotPositiveDefinite { column }),
    }
}

/// The same DAG as direct X-Kaapi data-flow tasks over keyed tile regions
/// of a [`Partitioned`] matrix.
pub fn cholesky_xkaapi(rt: &Runtime, a: TiledMatrix) -> Result<TiledMatrix, NotPositiveDefinite> {
    let nt = a.nt;
    let nb = a.nb;
    let failed = AtomicUsize::new(usize::MAX);
    let part = Partitioned::new(a);
    rt.scope(|ctx| {
        let reg = |i: usize, j: usize| Region::Key(tile_key(i, j));
        for k in 0..nt {
            let p = part.clone();
            let failed = &failed;
            ctx.spawn([part.access(reg(k, k), AccessMode::Exclusive)], move |_| {
                // Safety: exclusive keyed region (k,k).
                let m = unsafe { &mut *p.view() };
                if let Err(e) = potrf(m.tile_mut(k, k), nb) {
                    failed.store(e.column, Ordering::Relaxed);
                }
            });
            for mrow in k + 1..nt {
                let p = part.clone();
                ctx.spawn(
                    [
                        part.access(reg(k, k), AccessMode::Read),
                        part.access(reg(mrow, k), AccessMode::Exclusive),
                    ],
                    move |_| {
                        let m = unsafe { &mut *p.view() };
                        let lkk = TilePtr(m.tile_ptr(k, k), nb * nb);
                        trsm(unsafe { lkk.as_slice() }, m.tile_mut(mrow, k), nb);
                    },
                );
            }
            for mrow in k + 1..nt {
                let p = part.clone();
                ctx.spawn(
                    [
                        part.access(reg(mrow, k), AccessMode::Read),
                        part.access(reg(mrow, mrow), AccessMode::Exclusive),
                    ],
                    move |_| {
                        let m = unsafe { &mut *p.view() };
                        let amk = TilePtr(m.tile_ptr(mrow, k), nb * nb);
                        syrk(unsafe { amk.as_slice() }, m.tile_mut(mrow, mrow), nb);
                    },
                );
                for n in k + 1..mrow {
                    let p = part.clone();
                    ctx.spawn(
                        [
                            part.access(reg(mrow, k), AccessMode::Read),
                            part.access(reg(n, k), AccessMode::Read),
                            part.access(reg(mrow, n), AccessMode::Exclusive),
                        ],
                        move |_| {
                            let m = unsafe { &mut *p.view() };
                            let amk = TilePtr(m.tile_ptr(mrow, k), nb * nb);
                            let ank = TilePtr(m.tile_ptr(n, k), nb * nb);
                            gemm(
                                unsafe { amk.as_slice() },
                                unsafe { ank.as_slice() },
                                m.tile_mut(mrow, n),
                                nb,
                            );
                        },
                    );
                }
            }
        }
    });
    let a = part.into_inner();
    match failed.load(Ordering::Relaxed) {
        usize::MAX => Ok(a),
        column => Err(NotPositiveDefinite { column }),
    }
}

/// The tiled Cholesky DAG recorded once with [`Runtime::record`] and
/// replayable any number of times — the record-then-optimize-then-replay
/// path (`DESIGN.md` §7).
///
/// The recording captures the exact task graph of [`cholesky_xkaapi`]
/// (keyed tile regions, same kernels), pays dependency analysis a single
/// time, and AOT-optimizes it: potrf/trsm chains on the critical path get
/// high priority, small same-band chains fuse. Each
/// [`RecordedCholesky::replay`] then factorizes whatever data currently
/// sits in the recorded matrix with **zero** per-iteration data-flow
/// binding — the amortization the BENCH_PR7 ablation measures.
pub struct RecordedCholesky {
    dag: RecordedDag,
    part: Partitioned<TiledMatrix>,
    failed: Arc<AtomicUsize>,
    nt: usize,
}

impl RecordedCholesky {
    /// Record the factorization DAG for `a` (consumed: its geometry fixes
    /// the recorded structure, its data is the first replay's input).
    /// Nothing executes during recording.
    pub fn record(rt: &Runtime, a: TiledMatrix) -> RecordedCholesky {
        let nt = a.nt;
        let nb = a.nb;
        let part = Partitioned::new(a);
        let failed = Arc::new(AtomicUsize::new(usize::MAX));
        let dag = rt.record(|r| {
            let reg = |i: usize, j: usize| Region::Key(tile_key(i, j));
            for op in cholesky_ops(nt) {
                match op {
                    CholOp::Potrf { k } => {
                        let p = part.clone();
                        let failed = Arc::clone(&failed);
                        r.task()
                            .access(part.access(reg(k, k), AccessMode::Exclusive))
                            .label(format!("potrf({k})"))
                            .spawn(move |_| {
                                // Safety: exclusive keyed region (k,k).
                                let m = unsafe { &mut *p.view() };
                                if let Err(e) = potrf(m.tile_mut(k, k), nb) {
                                    failed.store(e.column, Ordering::Relaxed);
                                }
                            });
                    }
                    CholOp::Trsm { k, m: mr } => {
                        let p = part.clone();
                        r.task()
                            .access(part.access(reg(k, k), AccessMode::Read))
                            .access(part.access(reg(mr, k), AccessMode::Exclusive))
                            .label(format!("trsm({k},{mr})"))
                            .spawn(move |_| {
                                let m = unsafe { &mut *p.view() };
                                let lkk = TilePtr(m.tile_ptr(k, k), nb * nb);
                                trsm(unsafe { lkk.as_slice() }, m.tile_mut(mr, k), nb);
                            });
                    }
                    CholOp::Syrk { k, m: mr } => {
                        let p = part.clone();
                        r.task()
                            .access(part.access(reg(mr, k), AccessMode::Read))
                            .access(part.access(reg(mr, mr), AccessMode::Exclusive))
                            .label(format!("syrk({k},{mr})"))
                            .spawn(move |_| {
                                let m = unsafe { &mut *p.view() };
                                let amk = TilePtr(m.tile_ptr(mr, k), nb * nb);
                                syrk(unsafe { amk.as_slice() }, m.tile_mut(mr, mr), nb);
                            });
                    }
                    CholOp::Gemm { k, m: mr, n } => {
                        let p = part.clone();
                        r.task()
                            .access(part.access(reg(mr, k), AccessMode::Read))
                            .access(part.access(reg(n, k), AccessMode::Read))
                            .access(part.access(reg(mr, n), AccessMode::Exclusive))
                            .label(format!("gemm({k},{mr},{n})"))
                            .spawn(move |_| {
                                let m = unsafe { &mut *p.view() };
                                let amk = TilePtr(m.tile_ptr(mr, k), nb * nb);
                                let ank = TilePtr(m.tile_ptr(n, k), nb * nb);
                                gemm(
                                    unsafe { amk.as_slice() },
                                    unsafe { ank.as_slice() },
                                    m.tile_mut(mr, n),
                                    nb,
                                );
                            });
                    }
                }
            }
        });
        RecordedCholesky {
            dag,
            part,
            failed,
            nt,
        }
    }

    /// The recorded, optimized DAG (stats, DOT / chrome-trace exports).
    pub fn dag(&self) -> &RecordedDag {
        &self.dag
    }

    /// Overwrite the factorization input with `src`'s tiles, so the next
    /// replay factorizes fresh data. Panics on geometry mismatch (the
    /// recorded DAG is specific to the tile layout).
    pub fn load(&mut self, src: &TiledMatrix) {
        // Safety: `&mut self` and replay() blocking until the DAG drained
        // guarantee no task is touching the matrix.
        let dst = unsafe { &mut *self.part.view() };
        assert_eq!(
            (dst.n, dst.nb),
            (src.n, src.nb),
            "recorded DAG is specific to the tile geometry"
        );
        for i in 0..self.nt {
            for j in 0..self.nt {
                dst.tile_mut(i, j).copy_from_slice(src.tile(i, j));
            }
        }
    }

    /// Factorize the currently loaded data by replaying the recorded DAG —
    /// no per-iteration dependency analysis. Blocks until done; read the
    /// factor with [`RecordedCholesky::result`].
    pub fn replay(&self, rt: &Runtime) -> Result<(), NotPositiveDefinite> {
        self.failed.store(usize::MAX, Ordering::Relaxed);
        self.dag.replay(rt);
        self.outcome()
    }

    /// [`RecordedCholesky::replay`], also returning the measured execution
    /// trace for the chrome-trace / DOT exports.
    pub fn replay_traced(&self, rt: &Runtime) -> (Result<(), NotPositiveDefinite>, ReplayTrace) {
        self.failed.store(usize::MAX, Ordering::Relaxed);
        let trace = self.dag.replay_traced(rt);
        (self.outcome(), trace)
    }

    fn outcome(&self) -> Result<(), NotPositiveDefinite> {
        match self.failed.load(Ordering::Relaxed) {
            usize::MAX => Ok(()),
            column => Err(NotPositiveDefinite { column }),
        }
    }

    /// Clone the current factorization result out (call between replays).
    pub fn result(&self) -> TiledMatrix {
        self.part.get().clone_matrix()
    }
}

/// PLASMA-static-style Cholesky: `threads` OS threads, tile-row-cyclic
/// ownership, progress table of atomics, no scheduler at all.
pub fn cholesky_static(threads: usize, a: &mut TiledMatrix) -> Result<(), NotPositiveDefinite> {
    assert!(threads >= 1);
    let nt = a.nt;
    let nb = a.nb;
    // progress[m*nt+n] = number of panel updates applied to tile (m,n).
    let progress: Vec<AtomicUsize> = (0..nt * nt).map(|_| AtomicUsize::new(0)).collect();
    let potrf_done: Vec<AtomicBool> = (0..nt).map(|_| AtomicBool::new(false)).collect();
    let trsm_done: Vec<AtomicBool> = (0..nt * nt).map(|_| AtomicBool::new(false)).collect();
    let failed = AtomicUsize::new(usize::MAX);

    let wait = |cond: &dyn Fn() -> bool, failed: &AtomicUsize| -> bool {
        let mut spins = 0u32;
        while !cond() {
            if failed.load(Ordering::Acquire) != usize::MAX {
                return false;
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        true
    };

    let a_ref: &TiledMatrix = a;
    std::thread::scope(|s| {
        for tid in 0..threads {
            let progress = &progress;
            let potrf_done = &potrf_done;
            let trsm_done = &trsm_done;
            let failed = &failed;
            let wait = &wait;
            s.spawn(move || {
                for k in 0..nt {
                    if failed.load(Ordering::Acquire) != usize::MAX {
                        return;
                    }
                    // potrf(k) — owned by thread k % p
                    if k % threads == tid {
                        if !wait(
                            &|| progress[k * nt + k].load(Ordering::Acquire) == k,
                            failed,
                        ) {
                            return;
                        }
                        let tkk = TilePtr(a_ref.tile_ptr(k, k), nb * nb);
                        // Safety: progress protocol grants exclusivity.
                        if let Err(e) = potrf(unsafe { tkk.as_mut_slice() }, nb) {
                            failed.store(e.column, Ordering::Release);
                            return;
                        }
                        potrf_done[k].store(true, Ordering::Release);
                    }
                    // row-cyclic ownership of rows m
                    for m in k + 1..nt {
                        if m % threads != tid {
                            continue;
                        }
                        if !wait(
                            &|| {
                                potrf_done[k].load(Ordering::Acquire)
                                    && progress[m * nt + k].load(Ordering::Acquire) == k
                            },
                            failed,
                        ) {
                            return;
                        }
                        let tkk = TilePtr(a_ref.tile_ptr(k, k), nb * nb);
                        let tmk = TilePtr(a_ref.tile_ptr(m, k), nb * nb);
                        unsafe { trsm(tkk.as_slice(), tmk.as_mut_slice(), nb) };
                        trsm_done[m * nt + k].store(true, Ordering::Release);
                    }
                    for m in k + 1..nt {
                        if m % threads != tid {
                            continue;
                        }
                        // syrk on (m,m)
                        if !wait(
                            &|| {
                                trsm_done[m * nt + k].load(Ordering::Acquire)
                                    && progress[m * nt + m].load(Ordering::Acquire) == k
                            },
                            failed,
                        ) {
                            return;
                        }
                        let tmk = TilePtr(a_ref.tile_ptr(m, k), nb * nb);
                        let tmm = TilePtr(a_ref.tile_ptr(m, m), nb * nb);
                        unsafe { syrk(tmk.as_slice(), tmm.as_mut_slice(), nb) };
                        progress[m * nt + m].store(k + 1, Ordering::Release);
                        for n in k + 1..m {
                            if !wait(
                                &|| {
                                    trsm_done[n * nt + k].load(Ordering::Acquire)
                                        && progress[m * nt + n].load(Ordering::Acquire) == k
                                },
                                failed,
                            ) {
                                return;
                            }
                            let tmk = TilePtr(a_ref.tile_ptr(m, k), nb * nb);
                            let tnk = TilePtr(a_ref.tile_ptr(n, k), nb * nb);
                            let tmn = TilePtr(a_ref.tile_ptr(m, n), nb * nb);
                            unsafe { gemm(tmk.as_slice(), tnk.as_slice(), tmn.as_mut_slice(), nb) };
                            progress[m * nt + n].store(k + 1, Ordering::Release);
                        }
                    }
                }
            });
        }
    });
    match failed.load(Ordering::Acquire) {
        usize::MAX => Ok(()),
        column => Err(NotPositiveDefinite { column }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const N: usize = 96;
    const NB: usize = 16;

    fn fresh() -> (TiledMatrix, TiledMatrix) {
        let a = TiledMatrix::spd_random(N, NB, 11);
        (a.clone_matrix(), a)
    }

    #[test]
    fn seq_factorisation_is_correct() {
        let (orig, mut a) = fresh();
        cholesky_seq(&mut a).unwrap();
        assert!(a.cholesky_residual(&orig) < 1e-8);
    }

    #[test]
    fn quark_centralized_matches_seq() {
        let (orig, mut a) = fresh();
        let mut reference = orig.clone_matrix();
        cholesky_seq(&mut reference).unwrap();
        let q = Quark::new_centralized(4);
        cholesky_quark(&q, &mut a).unwrap();
        assert!(a.max_abs_diff_lower(&reference) < 1e-9);
        assert!(a.cholesky_residual(&orig) < 1e-8);
    }

    #[test]
    fn quark_on_xkaapi_matches_seq() {
        let (orig, mut a) = fresh();
        let q = Quark::new_on_xkaapi(Arc::new(Runtime::new(4)));
        cholesky_quark(&q, &mut a).unwrap();
        assert!(a.cholesky_residual(&orig) < 1e-8);
    }

    #[test]
    fn xkaapi_dataflow_matches_seq() {
        let (orig, a) = fresh();
        let rt = Runtime::new(4);
        let a = cholesky_xkaapi(&rt, a).unwrap();
        assert!(a.cholesky_residual(&orig) < 1e-8);
    }

    #[test]
    fn static_matches_seq_various_thread_counts() {
        for threads in [1, 2, 3, 5] {
            let (orig, mut a) = fresh();
            cholesky_static(threads, &mut a).unwrap();
            assert!(a.cholesky_residual(&orig) < 1e-8, "threads={threads}");
        }
    }

    #[test]
    fn non_spd_detected_by_all_drivers() {
        let mk = || {
            let mut a = TiledMatrix::spd_random(32, 8, 5);
            a.set(20, 20, -50.0); // break positive definiteness
            a
        };
        assert!(cholesky_seq(&mut mk()).is_err());
        assert!(cholesky_static(2, &mut mk()).is_err());
        let q = Quark::new_centralized(2);
        assert!(cholesky_quark(&q, &mut mk()).is_err());
        let rt = Runtime::new(2);
        assert!(cholesky_xkaapi(&rt, mk()).is_err());
    }

    #[test]
    fn recorded_replay_matches_seq_and_repeats() {
        let (orig, a) = fresh();
        let rt = Runtime::new(4);
        let mut rec = RecordedCholesky::record(&rt, a);
        assert_eq!(rec.dag().len(), cholesky_ops(N / NB).len());
        assert!(
            rec.result().max_abs_diff_lower(&orig) < 1e-15,
            "recording must not factorize"
        );
        rec.replay(&rt).unwrap();
        assert!(rec.result().cholesky_residual(&orig) < 1e-8);
        // Reload fresh input and replay again: same DAG, new data.
        rec.load(&orig);
        rec.replay(&rt).unwrap();
        assert!(rec.result().cholesky_residual(&orig) < 1e-8);
    }

    #[test]
    fn recorded_replay_pays_no_dataflow_pushes() {
        let (orig, a) = fresh();
        let rt = Runtime::new(4);
        let mut rec = RecordedCholesky::record(&rt, a);
        rec.replay(&rt).unwrap();
        rt.reset_stats();
        for _ in 0..3 {
            rec.load(&orig);
            rec.replay(&rt).unwrap();
        }
        assert_eq!(
            rt.stats().dataflow_pushes,
            0,
            "replay must not re-run dependency analysis"
        );
        assert!(rec.result().cholesky_residual(&orig) < 1e-8);
    }

    #[test]
    fn recorded_replay_detects_non_spd_and_recovers() {
        let rt = Runtime::new(2);
        let mut bad = TiledMatrix::spd_random(32, 8, 5);
        bad.set(20, 20, -50.0);
        let mut rec = RecordedCholesky::record(&rt, bad);
        assert!(rec.replay(&rt).is_err());
        let good = TiledMatrix::spd_random(32, 8, 9);
        rec.load(&good);
        rec.replay(&rt).unwrap();
        assert!(rec.result().cholesky_residual(&good) < 1e-8);
    }

    #[test]
    fn ops_enumeration_counts() {
        // nt tiles: potrf nt, trsm nt(nt-1)/2, syrk nt(nt-1)/2,
        // gemm nt(nt-1)(nt-2)/6
        let nt = 6;
        let ops = cholesky_ops(nt);
        let potrfs = ops
            .iter()
            .filter(|o| matches!(o, CholOp::Potrf { .. }))
            .count();
        let trsms = ops
            .iter()
            .filter(|o| matches!(o, CholOp::Trsm { .. }))
            .count();
        let syrks = ops
            .iter()
            .filter(|o| matches!(o, CholOp::Syrk { .. }))
            .count();
        let gemms = ops
            .iter()
            .filter(|o| matches!(o, CholOp::Gemm { .. }))
            .count();
        assert_eq!(potrfs, nt);
        assert_eq!(trsms, nt * (nt - 1) / 2);
        assert_eq!(syrks, nt * (nt - 1) / 2);
        assert_eq!(gemms, nt * (nt - 1) * (nt - 2) / 6);
    }

    #[test]
    fn ops_accesses_consistent() {
        for op in cholesky_ops(4) {
            let acc = op.accesses();
            assert!(
                acc.iter().filter(|(_, w)| *w).count() == 1,
                "one written tile per op"
            );
        }
    }
}
