//! Victim-selection layer tests (DESIGN.md §3).
//!
//! Two levels:
//!
//! 1. **Deterministic**: [`StealPolicy::choose_victim`] is a pure function
//!    of `(me, rng, topology, fail_streak)`, so a seeded xorshift closure
//!    makes the policies' selection behaviour exactly checkable —
//!    [`HierarchicalVictim`] stays on the thief's node below the
//!    escalation threshold and goes machine-wide (flagged `escalated`)
//!    above it; [`LocalityFirst`] concentrates picks on the nearest ring.
//! 2. **End-to-end**: a runtime built with a hierarchical policy on a
//!    modelled 2-node topology lands a strictly larger share of same-node
//!    steals than the uniform baseline, observed through the
//!    `steals_local_node` / `steals_remote_node` counters.

use xkaapi::core::{
    HierarchicalVictim, LocalityFirst, Runtime, Shared, StealPolicy, Topology, UniformVictim,
};

/// Seeded xorshift64* closure: the same seed replays the same choices.
fn seeded_rng(mut x: u64) -> impl FnMut() -> u64 {
    move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    }
}

#[test]
fn hierarchical_prefers_same_node_then_escalates() {
    let topo = Topology::two_level(8, 4); // nodes {0..3} and {4..7}
    let pol = HierarchicalVictim {
        escalate_after: 4,
        max_batch: 8,
    };
    let me = 1usize;

    // Below the escalation threshold: every pick is a same-node sibling,
    // never me, never flagged as escalated.
    let mut rng = seeded_rng(0xDEAD_BEEF);
    for fail_streak in 0..4 {
        for _ in 0..200 {
            let c = pol.choose_victim(me, &mut rng, &topo, fail_streak);
            assert_ne!(c.victim, me);
            assert!(
                topo.same_node(me, c.victim),
                "streak {fail_streak}: picked remote victim {} before escalation",
                c.victim
            );
            assert!(!c.escalated);
        }
    }

    // At the threshold: machine-wide picks, remote victims reachable and
    // flagged as escalations.
    let mut rng = seeded_rng(0xDEAD_BEEF);
    let mut saw_remote = false;
    for _ in 0..200 {
        let c = pol.choose_victim(me, &mut rng, &topo, 4);
        assert_ne!(c.victim, me);
        assert!(c.escalated, "post-threshold picks must be escalations");
        saw_remote |= !topo.same_node(me, c.victim);
    }
    assert!(saw_remote, "escalated picks must reach the remote node");

    // Same seed, same choices: the selection is deterministic in the rng.
    let replay = |seed| {
        let mut rng = seeded_rng(seed);
        (0..50)
            .map(|_| pol.choose_victim(me, &mut rng, &topo, 2).victim)
            .collect::<Vec<_>>()
    };
    assert_eq!(replay(7), replay(7));
}

#[test]
fn hierarchical_alone_on_node_goes_machine_wide_unflagged() {
    // Worker 6 is alone on node 2: no local victim exists, so machine-wide
    // picks are not counted as escalations (nothing was skipped).
    let topo = Topology::two_level(7, 3);
    let pol = HierarchicalVictim::default();
    let mut rng = seeded_rng(99);
    for _ in 0..100 {
        let c = pol.choose_victim(6, &mut rng, &topo, 0);
        assert_ne!(c.victim, 6);
        assert!(!c.escalated);
    }
}

#[test]
fn locality_first_concentrates_on_nearest_ring() {
    let topo = Topology::two_level(8, 4);
    let pol = LocalityFirst::default();
    let mut rng = seeded_rng(0x5EED);
    let (mut local, mut remote) = (0u32, 0u32);
    for _ in 0..1000 {
        let c = pol.choose_victim(0, &mut rng, &topo, 0);
        assert_ne!(c.victim, 0);
        if topo.same_node(0, c.victim) {
            assert!(!c.escalated);
            local += 1;
        } else {
            assert!(c.escalated, "remote pick must be flagged");
            remote += 1;
        }
    }
    // ~3/4 of picks stay in the nearest ring (geometric ring walk); a
    // uniform picker would land ~3/7 locally. Split the difference.
    assert!(
        local > remote * 2,
        "locality-first must concentrate near: {local} local vs {remote} remote"
    );

    // On a flat topology it degrades to uniform and never escalates.
    let flat = Topology::flat(4);
    for _ in 0..100 {
        let c = pol.choose_victim(0, &mut rng, &flat, 0);
        assert_ne!(c.victim, 0);
        assert!(!c.escalated);
    }
}

#[test]
fn uniform_covers_all_victims_without_escalating() {
    let topo = Topology::two_level(8, 4);
    let mut rng = seeded_rng(3);
    let mut seen = [false; 8];
    for _ in 0..500 {
        let c = UniformVictim.choose_victim(2, &mut rng, &topo, 10);
        assert_ne!(c.victim, 2);
        assert!(!c.escalated);
        seen[c.victim] = true;
    }
    let covered = seen.iter().filter(|&&s| s).count();
    assert_eq!(covered, 7, "uniform must reach every other worker");
}

/// The steal-heavy workload: one producer scope of busy data-flow chains
/// (thieves can win claims from the owner) plus an adaptive reduction
/// whose on-demand splits hand slices to requesting thieves. Checksum is
/// schedule-independent.
fn chain_workload(rt: &Runtime) -> u64 {
    let cells: Vec<Shared<u64>> = (0..16).map(|_| Shared::new(1)).collect();
    rt.scope(|ctx| {
        for round in 0..25u64 {
            for (i, c) in cells.iter().enumerate() {
                let cw = c.clone();
                ctx.spawn([c.exclusive()], move |t| {
                    let mut acc = round;
                    for k in 0..400u64 {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                    }
                    std::hint::black_box(acc);
                    *t.write(&cw) += round + i as u64;
                });
            }
        }
    });
    let chain_sum: u64 = cells.iter().map(|c| *c.get()).sum();
    let loop_sum = rt.foreach_reduce(
        0..10_000,
        None,
        || 0u64,
        |a, i| {
            let mut acc = i as u64;
            for k in 0..20u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            std::hint::black_box(acc);
            *a += i as u64;
        },
        |a, b| a + b,
    );
    chain_sum.wrapping_add(loop_sum)
}

#[test]
fn hierarchical_lands_more_same_node_steals_than_uniform() {
    let workers = 8;
    let build = |pol: std::sync::Arc<dyn StealPolicy>| {
        Runtime::builder()
            .workers(workers)
            .steal_policy(pol)
            .topology(Topology::two_level(workers, 4))
            .build()
    };
    let rt_uni = build(std::sync::Arc::new(UniformVictim));
    let rt_hier = build(std::sync::Arc::new(HierarchicalVictim::default()));

    let expect = chain_workload(&rt_uni);
    rt_uni.reset_stats();
    rt_hier.reset_stats();

    // Accumulate steals until both policies have a solid sample (stats
    // accumulate across rounds; results asserted every round). With ~µs
    // busy links plus adaptive splits, a few hundred classified steals
    // arrive well within the round budget.
    for _ in 0..400 {
        assert_eq!(chain_workload(&rt_uni), expect);
        assert_eq!(chain_workload(&rt_hier), expect);
        let (u, h) = (rt_uni.stats(), rt_hier.stats());
        if u.steals_local_node + u.steals_remote_node >= 200
            && h.steals_local_node + h.steals_remote_node >= 200
        {
            break;
        }
    }

    let (u, h) = (rt_uni.stats(), rt_hier.stats());
    assert!(
        u.steals_local_node + u.steals_remote_node >= 50,
        "not enough steal pressure to classify locality: {u:?}"
    );
    assert!(
        h.steal_locality_ratio() > u.steal_locality_ratio(),
        "hierarchical locality ratio must beat uniform: {:.3} (={}/{}) vs {:.3} (={}/{})",
        h.steal_locality_ratio(),
        h.steals_local_node,
        h.steals_remote_node,
        u.steal_locality_ratio(),
        u.steals_local_node,
        u.steals_remote_node
    );
    // The hierarchical policy overwhelmingly stays on-node; uniform can't
    // (only 3 of 7 victims are local).
    assert!(
        h.steals_local_node > h.steals_remote_node,
        "hierarchical must steal mostly same-node: {h:?}"
    );
}
