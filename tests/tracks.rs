//! Execution-track integration suite (DESIGN.md §10): the offload and io
//! engines behind [`Track`] routing.
//!
//! * **equivalence** — routing every task of a dataflow wavefront to the
//!   offload track changes *where* bodies run and *when* successors are
//!   released (completion drain, not body return), but never the result:
//!   checksums match the CPU track across all four queue×steal policy
//!   combinations;
//! * **completion feeds readiness** — on one worker, a successor of an
//!   offloaded task only runs after the engine's completion drains back
//!   through the inject lanes;
//! * **io isolation** — `.wait_external()` work blocked on an external
//!   event holds an io thread, never a CPU worker: a full CPU scope
//!   completes while the blockers sit parked, and the `tasks_io` counter
//!   proves where they ran;
//! * **lifecycle across the boundary** — a panic in an offloaded body
//!   poisons its dataflow cone exactly like a CPU panic, and a cancelled
//!   token skips offloaded bodies without losing the scope.
//!
//! [`Track`]: xkaapi::core::Track

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use xkaapi::core::{
    AggregatedStealing, CancelToken, PerThiefStealing, Runtime, Shared, StealPolicy, TaskQueue,
    Track,
};
use xkaapi::omp::OmpCentralQueue;

const COMBO_NAMES: [&str; 4] = [
    "dist+agg",
    "dist+perthief",
    "central+agg",
    "central+perthief",
];

/// One of the four queue×steal policy combinations, with a fast offload
/// engine (1 µs launch latency keeps the suite quick; the batching and
/// completion paths are identical).
fn build_rt(combo: usize, workers: usize) -> Runtime {
    let steal: Arc<dyn StealPolicy> = if combo.is_multiple_of(2) {
        Arc::new(AggregatedStealing)
    } else {
        Arc::new(PerThiefStealing)
    };
    let mut b = Runtime::builder()
        .workers(workers)
        .steal_policy(steal)
        .offload_launch_latency_us(1);
    if combo >= 2 {
        let q: Arc<dyn TaskQueue> = Arc::new(OmpCentralQueue::new());
        b = b.task_queue(q);
    }
    b.build()
}

/// Dataflow wavefront with every task routed to `track`: an n×n grid
/// where (i,j) reads (i−1,j) and (i,j−1). Returns the last tile.
fn wavefront(rt: &Runtime, n: usize, track: Track) -> u64 {
    let tiles: Vec<Shared<u64>> = (0..n * n).map(|_| Shared::new(0u64)).collect();
    rt.scope(|ctx| {
        for i in 0..n {
            for j in 0..n {
                let me = tiles[i * n + j].clone();
                let up = (i > 0).then(|| tiles[(i - 1) * n + j].clone());
                let left = (j > 0).then(|| tiles[i * n + j - 1].clone());
                let mut accs = vec![me.write()];
                accs.extend(up.as_ref().map(|h| h.read()));
                accs.extend(left.as_ref().map(|h| h.read()));
                ctx.task().accesses(accs).track(track).spawn(move |t| {
                    let u = up.as_ref().map_or(1, |h| *t.read(h));
                    let l = left.as_ref().map_or(1, |h| *t.read(h));
                    *t.write(&me) = u.wrapping_add(l).wrapping_mul(2654435761);
                });
            }
        }
    });
    *tiles[n * n - 1].get()
}

/// Offload on vs off: identical checksums across all four scheduler
/// policy combinations, and the offload run really went through the
/// engine (routed, batched, drained — not silently run on the CPU).
#[test]
fn offload_checksum_equivalence_across_policies() {
    let n = 8usize;
    for (combo, name) in COMBO_NAMES.iter().enumerate() {
        let rt_cpu = build_rt(combo, 4);
        let cpu = wavefront(&rt_cpu, n, Track::Cpu);
        assert_eq!(
            rt_cpu.stats().tasks_offloaded,
            0,
            "[{name}] the CPU run must not touch the engine"
        );
        let rt_off = build_rt(combo, 4);
        let off = wavefront(&rt_off, n, Track::Offload);
        assert_eq!(cpu, off, "[{name}] offload changed the wavefront result");
        let s = rt_off.stats();
        let tasks = (n * n) as u64;
        assert_eq!(s.tasks_offloaded, tasks, "[{name}] every task routed");
        assert_eq!(s.offload_completions, tasks, "[{name}] every task drained");
        assert!(s.offload_batches > 0, "[{name}] launches were batched");
        assert!(
            s.offload_h2d > 0 && s.offload_d2h == tasks,
            "[{name}] transfers synthesized (h2d {}, d2h {})",
            s.offload_h2d,
            s.offload_d2h
        );
    }
}

/// On a single worker there is no second CPU to sneak the successor in:
/// B (CPU track) reads what A (offload track) wrote, so B can only run
/// after A's completion drains from the engine back through the inject
/// lanes. The observed order and the drain counter prove the release
/// came from the completion stream, not from A's spawn or body return.
#[test]
fn completion_feeds_readiness_on_one_worker() {
    let rt = Runtime::builder()
        .workers(1)
        .offload_launch_latency_us(1)
        .build();
    let h = Shared::new(0u64);
    let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
    rt.scope(|ctx| {
        let (hw, ord) = (h.clone(), Arc::clone(&order));
        ctx.task()
            .access(h.exclusive())
            .track(Track::Offload)
            .spawn(move |t| {
                ord.lock().unwrap().push("offloaded");
                *t.write(&hw) = 7;
            });
        let (hw, ord) = (h.clone(), Arc::clone(&order));
        ctx.task().access(h.exclusive()).spawn(move |t| {
            ord.lock().unwrap().push("successor");
            *t.write(&hw) += 1;
        });
    });
    assert_eq!(*h.get(), 8, "successor saw the offloaded write");
    assert_eq!(*order.lock().unwrap(), ["offloaded", "successor"]);
    let s = rt.stats();
    assert_eq!(s.tasks_offloaded, 1);
    assert_eq!(
        s.offload_completions, 1,
        "the successor was released by the completion drain"
    );
}

/// Blocking io work never occupies a CPU worker: park `wait_external`
/// jobs behind a gate, run a whole CPU scope to completion while they
/// sit blocked, then release them. The io engine's own counter (and the
/// untouched offload counters) pin down where every body ran.
#[test]
fn io_track_never_occupies_a_cpu_worker() {
    let workers = 2usize;
    let rt = Arc::new(Runtime::builder().workers(workers).io_threads(1).build());
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    // One blocker per CPU worker — if these held CPU workers, the scope
    // below would have no worker left to run on.
    let blockers: Vec<_> = (0..workers)
        .map(|_| {
            let gate = Arc::clone(&gate);
            rt.task()
                .wait_external()
                .submit(move |_ctx| {
                    let (mx, cv) = &*gate;
                    let mut open = mx.lock().unwrap();
                    while !*open {
                        open = cv.wait(open).unwrap();
                    }
                    11u64
                })
                .expect("io admission is unbounded")
        })
        .collect();
    // The whole CPU pool is still available while the blockers wait.
    let sum = rt.foreach_reduce(
        0..10_000,
        None,
        || 0u64,
        |a, i| *a += i as u64,
        |a, b| a + b,
    );
    assert_eq!(sum, 49_995_000, "CPU scope completed alongside blockers");
    {
        let (mx, cv) = &*gate;
        *mx.lock().unwrap() = true;
        cv.notify_all();
    }
    for b in blockers {
        assert_eq!(b.wait(), 11);
    }
    let s = rt.stats();
    assert_eq!(
        s.tasks_io, workers as u64,
        "every blocker ran on the io thread set"
    );
    assert_eq!(s.tasks_offloaded, 0);

    // An io *task* inside a dataflow scope: the io body's write releases
    // a CPU successor — readiness crosses the track boundary both ways.
    let h = Shared::new(0u64);
    rt.scope(|ctx| {
        let hw = h.clone();
        ctx.task()
            .access(h.exclusive())
            .wait_external()
            .spawn(move |t| *t.write(&hw) = 5);
        let hw = h.clone();
        ctx.task()
            .access(h.exclusive())
            .spawn(move |t| *t.write(&hw) *= 3);
    });
    assert_eq!(*h.get(), 15);
    assert_eq!(rt.stats().tasks_io, workers as u64 + 1);
}

/// A panic in an offloaded body re-raises at the scope and poisons its
/// dataflow cone — the same lifecycle contract as a CPU panic, across
/// the track boundary. The pool (and the engine) stay alive after.
#[test]
fn offload_panic_poisons_cone_across_boundary() {
    let rt = build_rt(0, 2);
    let h = Shared::new(0u64);
    let res = catch_unwind(AssertUnwindSafe(|| {
        rt.scope(|ctx| {
            let hw = h.clone();
            ctx.task()
                .access(h.exclusive())
                .track(Track::Offload)
                .spawn(move |t| {
                    *t.write(&hw) = 1;
                    panic!("offload body panic");
                });
            for _ in 0..4 {
                let hw = h.clone();
                ctx.task()
                    .access(h.exclusive())
                    .track(Track::Offload)
                    .spawn(move |t| *t.write(&hw) += 100);
            }
        });
    }));
    let payload = res.expect_err("the panic must re-raise at the scope");
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(msg.contains("offload body panic"), "wrong payload: {msg:?}");
    let s = rt.stats();
    assert_eq!(s.tasks_panicked, 1);
    assert_eq!(s.tasks_poisoned, 4, "the whole downstream cone is poisoned");
    assert_eq!(*h.get(), 1, "no poisoned body ran");
    // Engine and pool both alive: a clean offload round still works.
    let clean = wavefront(&rt, 4, Track::Offload);
    assert_eq!(clean, wavefront(&rt, 4, Track::Cpu));
}

/// A cancelled token skips offloaded bodies exactly like CPU bodies: the
/// scope drains (no hang waiting on engine completions), nothing runs.
#[test]
fn cancellation_skips_offloaded_bodies() {
    let rt = build_rt(1, 2);
    let tok = CancelToken::new();
    tok.cancel();
    let h = Shared::new(0u64);
    rt.scope(|ctx| {
        for _ in 0..8 {
            let hw = h.clone();
            ctx.task()
                .access(h.exclusive())
                .track(Track::Offload)
                .cancel_token(&tok)
                .spawn(move |t| *t.write(&hw) += 1);
        }
    });
    assert_eq!(*h.get(), 0, "cancelled bodies must not run");
    let s = rt.stats();
    assert_eq!(s.tasks_cancelled, 8);
    assert_eq!(rt.scope(|c| c.join(|_| 2, |_| 3)), (2, 3));
}
