//! Property-style tests on the invariants the reproduction depends on:
//! sequential consistency of data-flow execution, iteration conservation of
//! adaptive loops, factor/solve round trips, scan/reduce equivalences and
//! simulator scheduling bounds.
//!
//! The container has no registry access, so instead of `proptest` these use
//! a seeded in-repo case generator: every case is deterministic per seed,
//! and a failure message names the case number so it can be replayed by
//! index.

use xkaapi::core::{IntervalCell, Runtime, Shared};

/// Deterministic case-generation RNG (splitmix64).
struct CaseRng(u64);

impl CaseRng {
    fn new(seed: u64) -> CaseRng {
        CaseRng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    fn usize_range(&mut self, lo: usize, hi: usize) -> usize {
        self.range(lo as u64, hi as u64) as usize
    }
}

/// Random programs of read/write/exclusive accesses over a handful of
/// handles always produce the sequential-order result.
#[test]
fn dataflow_execution_is_sequentially_consistent() {
    let mut rng = CaseRng::new(0xDF01);
    for case in 0..24 {
        let nops = rng.usize_range(1, 60);
        let workers = rng.usize_range(1, 5);
        let ops: Vec<(usize, usize, u64)> = (0..nops)
            .map(|_| {
                (
                    rng.usize_range(0, 6),
                    rng.usize_range(0, 6),
                    rng.range(1, 9),
                )
            })
            .collect();
        // reference: sequential interpretation  cells[a] += c * cells[b]
        let mut reference = [1u64; 6];
        for &(a, b, c) in &ops {
            reference[a] = reference[a].wrapping_add(c.wrapping_mul(reference[b]));
        }
        let rt = Runtime::new(workers);
        let cells: Vec<Shared<u64>> = (0..6).map(|_| Shared::new(1)).collect();
        rt.scope(|ctx| {
            for &(a, b, c) in &ops {
                let (ca, cb) = (cells[a].clone(), cells[b].clone());
                if a == b {
                    ctx.spawn([cells[a].exclusive()], move |t| {
                        let mut g = t.write(&ca);
                        let v = *g;
                        *g = v.wrapping_add(c.wrapping_mul(v));
                    });
                } else {
                    ctx.spawn([cells[a].exclusive(), cells[b].read()], move |t| {
                        let vb = *t.read(&cb);
                        let mut ga = t.write(&ca);
                        *ga = ga.wrapping_add(c.wrapping_mul(vb));
                    });
                }
            }
        });
        for i in 0..6 {
            assert_eq!(*cells[i].get(), reference[i], "case {case}, cell {i}");
        }
    }
}

/// Random programs of write-only overwrites, exclusive updates and reads
/// over renameable handles produce the sequential-order result with
/// renaming both on and off (scan mode and graph mode share one dependency
/// engine; renaming only removes WAR/WAW edges, never RAW ones).
#[test]
fn renaming_preserves_sequential_semantics() {
    use std::sync::atomic::{AtomicU64, Ordering};
    let mut rng = CaseRng::new(0xAE08);
    for case in 0..16 {
        let nh = rng.usize_range(1, 4);
        let nops = rng.usize_range(1, 50);
        let workers = rng.usize_range(1, 5);
        // op = (handle, kind, value): kind 0 = write-only overwrite,
        // 1 = exclusive add, 2 = read-accumulate into a checksum.
        let ops: Vec<(usize, u64, u64)> = (0..nops)
            .map(|_| (rng.usize_range(0, nh), rng.range(0, 3), rng.range(1, 100)))
            .collect();
        // Sequential reference.
        let mut cells = vec![0u64; nh];
        let mut checksum = 0u64;
        for &(h, kind, v) in &ops {
            match kind {
                0 => cells[h] = v,
                1 => cells[h] = cells[h].wrapping_add(v),
                _ => checksum = checksum.wrapping_add(cells[h]),
            }
        }
        for renaming in [true, false] {
            let rt = xkaapi::Runtime::builder()
                .workers(workers)
                .renaming(renaming)
                .build();
            let handles: Vec<Shared<u64>> = (0..nh).map(|_| Shared::renameable(0)).collect();
            let sum = AtomicU64::new(0);
            rt.scope(|ctx| {
                let sum = &sum;
                for &(h, kind, v) in &ops {
                    let hc = handles[h].clone();
                    match kind {
                        0 => ctx.spawn([handles[h].write()], move |t| *t.write(&hc) = v),
                        1 => ctx.spawn([handles[h].exclusive()], move |t| {
                            let mut g = t.write(&hc);
                            *g = g.wrapping_add(v);
                        }),
                        _ => ctx.spawn([handles[h].read()], move |t| {
                            sum.fetch_add(*t.read(&hc), Ordering::Relaxed);
                        }),
                    }
                }
            });
            for (i, h) in handles.into_iter().enumerate() {
                assert_eq!(
                    h.into_inner(),
                    cells[i],
                    "case {case}: cell {i} (renaming={renaming}, workers={workers})"
                );
            }
            assert_eq!(
                sum.load(Ordering::Relaxed),
                checksum,
                "case {case}: checksum (renaming={renaming}, workers={workers})"
            );
        }
    }
}

/// foreach executes every index exactly once for arbitrary ranges, grains
/// and worker counts.
#[test]
fn foreach_exactly_once() {
    use std::sync::atomic::{AtomicU8, Ordering};
    let mut rng = CaseRng::new(0xFE02);
    for case in 0..24 {
        let n = rng.usize_range(0, 3000);
        let grain = match rng.range(0, 2) {
            0 => None,
            _ => Some(rng.usize_range(1, 200)),
        };
        let workers = rng.usize_range(1, 5);
        let rt = Runtime::new(workers);
        let hits: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(0)).collect();
        rt.foreach_chunks(0..n, grain, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(
            hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
            "case {case}: n={n} grain={grain:?} workers={workers}"
        );
    }
}

/// The T.H.E.-style interval never loses or duplicates iterations under any
/// interleaving of front claims and back steals.
#[test]
fn interval_conservation() {
    let mut rng = CaseRng::new(0x1C03);
    for case in 0..24 {
        let n = rng.usize_range(1, 5000);
        let grain = rng.usize_range(1, 64);
        let nops = rng.usize_range(0, 200);
        let iv = IntervalCell::new(0, n);
        let mut seen = vec![false; n];
        let mut stolen_cells: Vec<IntervalCell> = Vec::new();
        for _ in 0..nops {
            let steal = rng.range(0, 2) == 0;
            let k = rng.usize_range(1, 7);
            if steal {
                if let Some(r) = iv.steal_back(k, grain) {
                    stolen_cells.push(IntervalCell::new(r.start, r.end));
                }
            } else if let Some(r) = iv.claim_front(grain) {
                for i in r {
                    assert!(!seen[i], "case {case}: duplicate {i}");
                    seen[i] = true;
                }
            }
        }
        // Drain everything left (victim + thieves).
        while let Some(r) = iv.claim_front(grain) {
            for i in r {
                assert!(!seen[i], "case {case}: duplicate {i}");
                seen[i] = true;
            }
        }
        for cell in &stolen_cells {
            while let Some(r) = cell.claim_front(grain) {
                for i in r {
                    assert!(!seen[i], "case {case}: duplicate {i}");
                    seen[i] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "case {case}: lost iterations");
    }
}

/// Parallel inclusive scan equals the sequential fold for arbitrary inputs
/// (associative non-commutative operation).
#[test]
fn scan_equals_sequential() {
    let mut rng = CaseRng::new(0x5C04);
    for case in 0..12 {
        let len = rng.usize_range(0, 4000);
        let workers = rng.usize_range(1, 5);
        let rt = Runtime::new(workers);
        // affine composition: non-commutative, associative (mod prime)
        let op = |a: (u64, u64), b: (u64, u64)| ((a.0 * b.0) % 10_007, (a.1 * b.0 + b.1) % 10_007);
        let mut v: Vec<(u64, u64)> = (0..len)
            .map(|_| (rng.range(0, 1000) % 7 + 1, rng.range(0, 1000) % 11))
            .collect();
        let mut expect = v.clone();
        for i in 1..expect.len() {
            expect[i] = op(expect[i - 1], expect[i]);
        }
        xkaapi::astl::inclusive_scan(&rt, &mut v, op);
        assert_eq!(v, expect, "case {case}: len={len} workers={workers}");
    }
}

/// Skyline factor + solve round-trips A·x = b for random profiles.
#[test]
fn skyline_factor_solve_roundtrip() {
    use xkaapi::skyline::{ldlt_seq, solve, BlockSkyline, SkylineMatrix};
    let mut rng = CaseRng::new(0x5F05);
    for case in 0..10 {
        let n = rng.usize_range(8, 120);
        let bs = rng.usize_range(4, 24);
        let density = 0.05 + (rng.range(0, 1000) as f64 / 1000.0) * 0.55;
        let seed = rng.range(0, 1000);
        let a = SkylineMatrix::generate_spd(n, density, seed);
        let mut f = BlockSkyline::from_skyline(&a, bs);
        ldlt_seq(&mut f);
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 37 + 5) % 23) as f64 - 11.0).collect();
        let b = a.mvp(&x_true);
        let x = solve(&f, &b);
        let err = x
            .iter()
            .zip(&x_true)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0f64, f64::max);
        assert!(
            err < 1e-5,
            "case {case}: solve error {err} (n={n}, bs={bs})"
        );
    }
}

/// Simulated makespans always respect the work and span lower bounds and
/// executing with more cores never increases the makespan beyond the
/// 1-core run.
#[test]
fn simulator_respects_bounds() {
    use xkaapi::sim::{simulate_dag, DagPolicy, Platform, SimTask, TaskDag};
    let mut rng = CaseRng::new(0x5B06);
    for case in 0..16 {
        let nt = rng.usize_range(2, 10);
        let cores = rng.usize_range(1, 48);
        let work = rng.range(1_000, 1_000_000);
        let ops = xkaapi::linalg::cholesky_ops(nt);
        let tasks: Vec<SimTask> = ops
            .iter()
            .map(|_| SimTask {
                work_ns: work,
                bytes: 0,
            })
            .collect();
        let acc: Vec<Vec<(u64, bool)>> = ops.iter().map(|o| o.accesses()).collect();
        let dag = TaskDag::from_accesses(tasks, &acc);
        let pol = DagPolicy::WorkStealing {
            steal_ns: 100,
            task_overhead_ns: 10,
            aggregation: true,
            spawn_ns: 0,
        };
        let t1 = simulate_dag(&Platform::magny_cours(1), &dag, &pol, 7).makespan_ns;
        let tp = simulate_dag(&Platform::magny_cours(cores), &dag, &pol, 7).makespan_ns;
        assert!(
            tp >= dag.total_work_ns() / cores as u64,
            "case {case}: work bound"
        );
        assert!(tp >= dag.critical_path_ns(), "case {case}: span bound");
        assert!(
            tp <= t1 + t1 / 10,
            "case {case}: tp {tp} should not exceed t1 {t1}"
        );
    }
}

/// Dense Cholesky on the data-flow runtime matches the sequential
/// factorisation for random SPD matrices.
#[test]
fn dataflow_cholesky_matches_seq() {
    use xkaapi::linalg::{cholesky_seq, cholesky_xkaapi, TiledMatrix};
    let mut rng = CaseRng::new(0xC407);
    for case in 0..8 {
        let nt = rng.usize_range(2, 6);
        let seed = rng.range(0, 500);
        let workers = rng.usize_range(1, 5);
        let nb = 8;
        let orig = TiledMatrix::spd_random(nt * nb, nb, seed);
        let mut reference = orig.clone_matrix();
        cholesky_seq(&mut reference).unwrap();
        let rt = Runtime::new(workers);
        let a = cholesky_xkaapi(&rt, orig).unwrap();
        assert_eq!(
            a.max_abs_diff_lower(&reference),
            0.0,
            "case {case}: nt={nt} seed={seed} workers={workers}"
        );
    }
}
