//! Property-based tests (proptest) on the invariants the reproduction
//! depends on: sequential consistency of data-flow execution, iteration
//! conservation of adaptive loops, factor/solve round trips, scan/reduce
//! equivalences and simulator scheduling bounds.

use proptest::prelude::*;
use xkaapi_repro::core::{IntervalCell, Runtime, Shared};

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random programs of read/write/exclusive accesses over a handful of
    /// handles always produce the sequential-order result.
    #[test]
    fn dataflow_execution_is_sequentially_consistent(
        ops in prop::collection::vec((0usize..6, 0usize..6, 1u64..9), 1..60),
        workers in 1usize..5,
    ) {
        // reference: sequential interpretation  cells[a] += c * cells[b]
        let mut reference = vec![1u64; 6];
        for &(a, b, c) in &ops {
            reference[a] = reference[a].wrapping_add(c.wrapping_mul(reference[b]));
        }
        let rt = Runtime::new(workers);
        let cells: Vec<Shared<u64>> = (0..6).map(|_| Shared::new(1)).collect();
        rt.scope(|ctx| {
            for &(a, b, c) in &ops {
                let (ca, cb) = (cells[a].clone(), cells[b].clone());
                if a == b {
                    ctx.spawn([cells[a].exclusive()], move |t| {
                        let mut g = t.write(&ca);
                        let v = *g;
                        *g = v.wrapping_add(c.wrapping_mul(v));
                    });
                } else {
                    ctx.spawn([cells[a].exclusive(), cells[b].read()], move |t| {
                        let vb = *t.read(&cb);
                        let mut ga = t.write(&ca);
                        *ga = ga.wrapping_add(c.wrapping_mul(vb));
                    });
                }
            }
        });
        for i in 0..6 {
            prop_assert_eq!(*cells[i].get(), reference[i], "cell {}", i);
        }
    }

    /// foreach executes every index exactly once for arbitrary ranges,
    /// grains and worker counts.
    #[test]
    fn foreach_exactly_once(
        n in 0usize..3000,
        grain in prop::option::of(1usize..200),
        workers in 1usize..5,
    ) {
        use std::sync::atomic::{AtomicU8, Ordering};
        let rt = Runtime::new(workers);
        let hits: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(0)).collect();
        rt.foreach_chunks(0..n, grain, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    /// The T.H.E.-style interval never loses or duplicates iterations under
    /// any interleaving of front claims and back steals.
    #[test]
    fn interval_conservation(
        n in 1usize..5000,
        grain in 1usize..64,
        ops in prop::collection::vec((prop::bool::ANY, 1usize..7), 0..200),
    ) {
        let iv = IntervalCell::new(0, n);
        let mut seen = vec![false; n];
        let mut stolen_cells: Vec<IntervalCell> = Vec::new();
        for (steal, k) in ops {
            if steal {
                if let Some(r) = iv.steal_back(k, grain) {
                    stolen_cells.push(IntervalCell::new(r.start, r.end));
                }
            } else if let Some(r) = iv.claim_front(grain) {
                for i in r {
                    prop_assert!(!seen[i]);
                    seen[i] = true;
                }
            }
        }
        // Drain everything left (victim + thieves).
        while let Some(r) = iv.claim_front(grain) {
            for i in r {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
        }
        for cell in &stolen_cells {
            while let Some(r) = cell.claim_front(grain) {
                for i in r {
                    prop_assert!(!seen[i]);
                    seen[i] = true;
                }
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Parallel inclusive scan equals the sequential fold for arbitrary
    /// inputs (associative non-commutative operation).
    #[test]
    fn scan_equals_sequential(
        data in prop::collection::vec(0u64..1000, 0..4000),
        workers in 1usize..5,
    ) {
        let rt = Runtime::new(workers);
        // affine composition: non-commutative, associative (mod prime)
        let op = |a: (u64, u64), b: (u64, u64)| ((a.0 * b.0) % 10_007, (a.1 * b.0 + b.1) % 10_007);
        let mut v: Vec<(u64, u64)> = data.iter().map(|&x| (x % 7 + 1, x % 11)).collect();
        let mut expect = v.clone();
        for i in 1..expect.len() {
            expect[i] = op(expect[i - 1], expect[i]);
        }
        xkaapi_repro::astl::inclusive_scan(&rt, &mut v, op);
        prop_assert_eq!(v, expect);
    }

    /// Skyline factor + solve round-trips A·x = b for random profiles.
    #[test]
    fn skyline_factor_solve_roundtrip(
        n in 8usize..120,
        bs in 4usize..24,
        density in 0.05f64..0.6,
        seed in 0u64..1000,
    ) {
        use xkaapi_repro::skyline::{ldlt_seq, solve, BlockSkyline, SkylineMatrix};
        let a = SkylineMatrix::generate_spd(n, density, seed);
        let mut f = BlockSkyline::from_skyline(&a, bs);
        ldlt_seq(&mut f);
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 37 + 5) % 23) as f64 - 11.0).collect();
        let b = a.mvp(&x_true);
        let x = solve(&f, &b);
        let err = x.iter().zip(&x_true).map(|(p, q)| (p - q).abs()).fold(0.0f64, f64::max);
        prop_assert!(err < 1e-5, "solve error {} (n={}, bs={})", err, n, bs);
    }

    /// Simulated makespans always respect the work and span lower bounds
    /// and executing with more cores never increases the makespan beyond
    /// the 1-core run.
    #[test]
    fn simulator_respects_bounds(
        nt in 2usize..10,
        cores in 1usize..48,
        work in 1_000u64..1_000_000,
    ) {
        use xkaapi_repro::sim::{simulate_dag, DagPolicy, Platform, SimTask, TaskDag};
        let ops = xkaapi_repro::linalg::cholesky_ops(nt);
        let tasks: Vec<SimTask> = ops.iter().map(|_| SimTask { work_ns: work, bytes: 0 }).collect();
        let acc: Vec<Vec<(u64, bool)>> = ops.iter().map(|o| o.accesses()).collect();
        let dag = TaskDag::from_accesses(tasks, &acc);
        let pol = DagPolicy::WorkStealing {
            steal_ns: 100, task_overhead_ns: 10, aggregation: true, spawn_ns: 0,
        };
        let t1 = simulate_dag(&Platform::magny_cours(1), &dag, &pol, 7).makespan_ns;
        let tp = simulate_dag(&Platform::magny_cours(cores), &dag, &pol, 7).makespan_ns;
        prop_assert!(tp >= dag.total_work_ns() / cores as u64);
        prop_assert!(tp >= dag.critical_path_ns());
        prop_assert!(tp <= t1 + t1 / 10, "tp {} should not exceed t1 {}", tp, t1);
    }

    /// Dense Cholesky on the data-flow runtime matches the sequential
    /// factorisation for random SPD matrices.
    #[test]
    fn dataflow_cholesky_matches_seq(
        nt in 2usize..6,
        seed in 0u64..500,
        workers in 1usize..5,
    ) {
        use xkaapi_repro::linalg::{cholesky_seq, cholesky_xkaapi, TiledMatrix};
        let nb = 8;
        let orig = TiledMatrix::spd_random(nt * nb, nb, seed);
        let mut reference = orig.clone_matrix();
        cholesky_seq(&mut reference).unwrap();
        let rt = Runtime::new(workers);
        let a = cholesky_xkaapi(&rt, orig).unwrap();
        prop_assert_eq!(a.max_abs_diff_lower(&reference), 0.0);
    }
}
