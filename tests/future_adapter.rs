//! The `future` feature's async adapter: `JoinHandle` as a `Future`,
//! polled with a hand-rolled waker and **no reactor** — the wake-up rides
//! the existing `on_complete` callback path (ROADMAP injection follow-up).

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};
use xkaapi::core::Runtime;

/// Hand-rolled waker: counts wake-ups, drives no executor.
struct CountingWake {
    hits: AtomicUsize,
}

impl Wake for CountingWake {
    fn wake(self: Arc<Self>) {
        self.hits.fetch_add(1, Ordering::SeqCst);
    }
}

fn waker() -> (Arc<CountingWake>, Waker) {
    let w = Arc::new(CountingWake {
        hits: AtomicUsize::new(0),
    });
    (Arc::clone(&w), Waker::from(w))
}

fn wait_until(secs: u64, what: &str, cond: impl Fn() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(
            t0.elapsed() < Duration::from_secs(secs),
            "timed out waiting for {what}"
        );
        std::thread::yield_now();
    }
}

/// Pending while the job runs; the completion wakes the registered waker;
/// the next poll is Ready with the job's value.
#[test]
fn poll_pending_then_woken_then_ready() {
    let rt = Runtime::new(2);
    let gate = Arc::new(AtomicBool::new(false));
    let g = Arc::clone(&gate);
    let mut fut = rt
        .submit(move |_| {
            while !g.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            42u64
        })
        .unwrap();
    let (wake, waker) = waker();
    let mut cx = Context::from_waker(&waker);
    assert!(matches!(Pin::new(&mut fut).poll(&mut cx), Poll::Pending));
    assert_eq!(wake.hits.load(Ordering::SeqCst), 0, "no spurious wake");
    gate.store(true, Ordering::Release);
    wait_until(20, "completion to fire the waker", || {
        wake.hits.load(Ordering::SeqCst) >= 1
    });
    assert_eq!(Pin::new(&mut fut).poll(&mut cx), Poll::Ready(42));
}

/// A job that already finished resolves on the first poll — no waker is
/// ever registered or woken.
#[test]
fn already_complete_job_is_ready_immediately() {
    let rt = Runtime::new(2);
    let mut fut = rt.submit(|_| "done").unwrap();
    wait_until(20, "job to finish", || fut.is_done());
    let (wake, waker) = waker();
    let mut cx = Context::from_waker(&waker);
    assert_eq!(Pin::new(&mut fut).poll(&mut cx), Poll::Ready("done"));
    assert_eq!(wake.hits.load(Ordering::SeqCst), 0);
}

/// A panicking job re-raises its panic at poll time, like `wait`.
#[test]
fn poll_reraises_the_job_panic() {
    let rt = Runtime::new(2);
    let mut fut = rt.submit(|_| -> u32 { panic!("async boom") }).unwrap();
    wait_until(20, "job to finish", || fut.is_done());
    let (_, waker) = waker();
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut cx = Context::from_waker(&waker);
        let _ = Pin::new(&mut fut).poll(&mut cx);
    }))
    .expect_err("poll must re-raise the panic");
    assert!(err
        .downcast_ref::<&str>()
        .is_some_and(|m| m.contains("async boom")));
}

/// Re-polling with a fresh waker replaces the registered one: only the
/// *latest* waker is woken on completion (single-slot registration — a
/// busy executor re-polling many times cannot grow state, and stale
/// wakers are never fired).
#[test]
fn repolls_register_the_current_waker() {
    let rt = Runtime::new(2);
    let gate = Arc::new(AtomicBool::new(false));
    let g = Arc::clone(&gate);
    let mut fut = rt
        .submit(move |_| {
            while !g.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            1u8
        })
        .unwrap();
    let (wake1, waker1) = waker();
    let (wake2, waker2) = waker();
    assert!(matches!(
        Pin::new(&mut fut).poll(&mut Context::from_waker(&waker1)),
        Poll::Pending
    ));
    assert!(matches!(
        Pin::new(&mut fut).poll(&mut Context::from_waker(&waker2)),
        Poll::Pending
    ));
    gate.store(true, Ordering::Release);
    wait_until(20, "completion to fire the latest waker", || {
        wake2.hits.load(Ordering::SeqCst) >= 1
    });
    // The stale waker was replaced, never woken.
    assert_eq!(wake1.hits.load(Ordering::SeqCst), 0);
    assert_eq!(
        Pin::new(&mut fut).poll(&mut Context::from_waker(&waker1)),
        Poll::Ready(1)
    );
}
