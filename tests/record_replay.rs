//! Recorded-replay equivalence suite (ISSUE 7): a DAG captured by
//! `rt.record(...)` and replayed must be indistinguishable — result-wise —
//! from spawning the same tasks online, on **every** scheduler
//! configuration; repeated replays must be deterministic; and a replay
//! after mutating the input must observe the new values (handles are
//! re-read, not snapshotted).

use xkaapi::{RecordedDag, Runtime, Shared};
use xkaapi_bench::SchedPolicy;
use xkaapi_linalg::{cholesky_seq, RecordedCholesky, TiledMatrix};

/// A mixed DAG over several handles: exclusive chains, cross reads, and a
/// final join — enough structure for WAR/WAW edges, fusion and the
/// critical-path pass to all engage. Returns a schedule-independent
/// checksum.
fn spawn_online(rt: &Runtime, chains: usize, links: usize) -> u64 {
    let cells: Vec<Shared<u64>> = (0..chains).map(|i| Shared::new(i as u64 + 1)).collect();
    let sum = Shared::new(0u64);
    rt.scope(|ctx| {
        for (i, c) in cells.iter().enumerate() {
            for l in 0..links {
                let w = c.clone();
                let r = cells[(i + 1) % chains].clone();
                ctx.spawn([w.exclusive(), r.read()], move |t| {
                    let add = *t.read(&r) % 7 + l as u64;
                    let mut g = t.write(&w);
                    *g = g.wrapping_mul(3).wrapping_add(add);
                });
            }
        }
        let s = sum.clone();
        let all: Vec<_> = cells.to_vec();
        let accs: Vec<_> = cells
            .iter()
            .map(|c| c.read())
            .chain([s.exclusive()])
            .collect();
        ctx.spawn(accs, move |t| {
            let mut acc = 0u64;
            for c in &all {
                acc = acc.wrapping_mul(31).wrapping_add(*t.read(c));
            }
            *t.write(&s) = acc;
        });
    });
    *sum.get()
}

/// The same DAG captured with `rt.record`. Returns the DAG plus handles to
/// reset inputs and read the checksum between replays.
fn record_dag(
    rt: &Runtime,
    chains: usize,
    links: usize,
) -> (RecordedDag, Vec<Shared<u64>>, Shared<u64>) {
    let cells: Vec<Shared<u64>> = (0..chains).map(|i| Shared::new(i as u64 + 1)).collect();
    let sum = Shared::new(0u64);
    let dag = rt.record(|rec| {
        for (i, c) in cells.iter().enumerate() {
            for l in 0..links {
                let w = c.clone();
                let r = cells[(i + 1) % chains].clone();
                rec.spawn([w.exclusive(), r.read()], move |t| {
                    let add = *t.read(&r) % 7 + l as u64;
                    let mut g = t.write(&w);
                    *g = g.wrapping_mul(3).wrapping_add(add);
                });
            }
        }
        let s = sum.clone();
        let all: Vec<_> = cells.to_vec();
        let accs: Vec<_> = cells
            .iter()
            .map(|c| c.read())
            .chain([s.exclusive()])
            .collect();
        rec.spawn(accs, move |t| {
            let mut acc = 0u64;
            for c in &all {
                acc = acc.wrapping_mul(31).wrapping_add(*t.read(c));
            }
            *t.write(&s) = acc;
        });
    });
    (dag, cells, sum)
}

fn reset_cells(cells: &[Shared<u64>], base: u64) {
    // Quiescence contract: called between replays only.
    let rt = Runtime::new(1);
    rt.scope(|ctx| {
        for (i, c) in cells.iter().enumerate() {
            let w = c.clone();
            ctx.spawn([w.exclusive()], move |t| *t.write(&w) = i as u64 + base);
        }
    });
}

const CHAINS: usize = 6;
const LINKS: usize = 5;

#[test]
fn record_matches_online_on_every_scheduler_policy() {
    for policy in SchedPolicy::ALL {
        let rt = policy.build_runtime(4);
        let online = spawn_online(&rt, CHAINS, LINKS);
        let (dag, _cells, sum) = record_dag(&rt, CHAINS, LINKS);
        dag.replay(&rt);
        assert_eq!(
            *sum.get(),
            online,
            "recorded replay diverged from online scheduling under {}",
            policy.label()
        );
    }
}

#[test]
fn repeated_replays_are_deterministic() {
    let rt = Runtime::new(4);
    let (dag, cells, sum) = record_dag(&rt, CHAINS, LINKS);
    dag.replay(&rt);
    let first = *sum.get();
    for round in 0..5 {
        reset_cells(&cells, 1);
        dag.replay(&rt);
        assert_eq!(*sum.get(), first, "replay round {round} diverged");
    }
}

#[test]
fn replay_observes_mutated_input() {
    let rt = Runtime::new(4);
    let (dag, cells, sum) = record_dag(&rt, CHAINS, LINKS);
    dag.replay(&rt);
    let with_base_1 = *sum.get();
    reset_cells(&cells, 100);
    dag.replay(&rt);
    let with_base_100 = *sum.get();
    assert_ne!(
        with_base_1, with_base_100,
        "replay must re-read current handle data, not a snapshot"
    );
    // And it matches what online scheduling computes from the same inputs.
    let rt2 = Runtime::new(4);
    let cells2: Vec<Shared<u64>> = (0..CHAINS).map(|i| Shared::new(i as u64 + 100)).collect();
    let sum2 = Shared::new(0u64);
    rt2.scope(|ctx| {
        for (i, c) in cells2.iter().enumerate() {
            for l in 0..LINKS {
                let w = c.clone();
                let r = cells2[(i + 1) % CHAINS].clone();
                ctx.spawn([w.exclusive(), r.read()], move |t| {
                    let add = *t.read(&r) % 7 + l as u64;
                    let mut g = t.write(&w);
                    *g = g.wrapping_mul(3).wrapping_add(add);
                });
            }
        }
        let s = sum2.clone();
        let all: Vec<_> = cells2.to_vec();
        let accs: Vec<_> = cells2
            .iter()
            .map(|c| c.read())
            .chain([s.exclusive()])
            .collect();
        ctx.spawn(accs, move |t| {
            let mut acc = 0u64;
            for c in &all {
                acc = acc.wrapping_mul(31).wrapping_add(*t.read(c));
            }
            *t.write(&s) = acc;
        });
    });
    assert_eq!(*sum2.get(), with_base_100);
}

#[test]
fn recorded_cholesky_matches_online_on_every_scheduler_policy() {
    let orig = TiledMatrix::spd_random(96, 16, 7);
    let mut reference = orig.clone_matrix();
    cholesky_seq(&mut reference).unwrap();
    for policy in SchedPolicy::ALL {
        let rt = policy.build_runtime(4);
        let rec = RecordedCholesky::record(&rt, orig.clone_matrix());
        rec.replay(&rt).unwrap();
        assert_eq!(
            rec.result().max_abs_diff_lower(&reference),
            0.0,
            "recorded Cholesky diverged under {}",
            policy.label()
        );
    }
}

#[test]
fn replay_runs_zero_dependency_analysis() {
    let rt = Runtime::new(4);
    let (dag, cells, _sum) = record_dag(&rt, CHAINS, LINKS);
    dag.replay(&rt); // warm-up
    reset_cells(&cells, 1); // scopes above push analyzed tasks; reset after
    rt.reset_stats();
    for _ in 0..4 {
        dag.replay(&rt);
    }
    let stats = rt.stats();
    assert_eq!(
        stats.dataflow_pushes, 0,
        "replay re-ran dependency analysis"
    );
    assert!(stats.tasks_spawned > 0, "replay did execute tasks");
}
