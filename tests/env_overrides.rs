//! `XKAAPI_WORKERS` / `XKAAPI_GRAIN_FACTOR` / `XKAAPI_PARK_TIMEOUT_US` /
//! `XKAAPI_STEAL_ROUNDS` / `XKAAPI_MAX_PENDING` / `XKAAPI_PIN` /
//! `XKAAPI_OFFLOAD_LATENCY_US` / `XKAAPI_IO_THREADS` environment
//! overrides of
//! [`xkaapi::core::Builder`]: the environment overrides *defaults* (so
//! benches and examples built on `Runtime::builder().build()` are tunable
//! without recompiling), while explicit setter calls always win (code that
//! sized structures to a requested worker count must not be resized from
//! the outside). Kept in a dedicated integration-test binary: environment
//! variables are process-global, and this is the only test in this
//! process, so mutating them cannot race another test.

use xkaapi::core::Runtime;

#[test]
fn env_vars_override_defaults_but_not_explicit_settings() {
    // Baseline: explicit settings, no env.
    let rt = Runtime::builder()
        .workers(2)
        .grain_factor(5)
        .park_timeout_us(250)
        .steal_rounds_before_park(16)
        .max_pending(77)
        .pin_workers(true)
        .build();
    assert_eq!(rt.num_workers(), 2);
    assert_eq!(rt.tunables().grain_factor, 5);
    assert_eq!(rt.tunables().park_timeout_us, 250);
    assert_eq!(rt.tunables().steal_rounds_before_park, 16);
    assert_eq!(rt.tunables().inject.max_pending, 77);
    assert!(rt.tunables().pin_workers);
    // Pinning is best effort: whether or not the syscall stuck, the
    // runtime computes correctly.
    let s = rt.foreach_reduce(0..1000, None, || 0u64, |a, i| *a += i as u64, |a, b| a + b);
    assert_eq!(s, 499_500);
    drop(rt);

    // Historical hardcoded values are the defaults.
    let rt = Runtime::builder().workers(1).build();
    assert_eq!(rt.tunables().park_timeout_us, 500);
    assert_eq!(rt.tunables().steal_rounds_before_park, 32);
    assert_eq!(rt.tunables().inject.max_pending, 4096);
    assert!(!rt.tunables().pin_workers, "pinning defaults off");
    assert_eq!(
        rt.tunables().offload,
        xkaapi::core::OffloadTunables::default(),
        "track tunables default untouched"
    );
    assert_eq!(rt.tunables().offload.launch_latency_us, 20);
    assert_eq!(rt.tunables().offload.io_threads, 2);
    drop(rt);

    // Single-threaded at this point (no other test in this binary, the
    // runtime above has been dropped and its workers joined).
    std::env::set_var("XKAAPI_WORKERS", "3");
    std::env::set_var("XKAAPI_GRAIN_FACTOR", "11");
    std::env::set_var("XKAAPI_PARK_TIMEOUT_US", "900");
    std::env::set_var("XKAAPI_STEAL_ROUNDS", "7");
    std::env::set_var("XKAAPI_MAX_PENDING", "123");
    std::env::set_var("XKAAPI_PIN", "1");
    std::env::set_var("XKAAPI_OFFLOAD_LATENCY_US", "77");
    std::env::set_var("XKAAPI_IO_THREADS", "4");

    // Env overrides the defaults…
    let rt = Runtime::builder().build();
    assert_eq!(
        rt.num_workers(),
        3,
        "XKAAPI_WORKERS must override the default"
    );
    assert_eq!(
        rt.tunables().grain_factor,
        11,
        "XKAAPI_GRAIN_FACTOR must override"
    );
    assert_eq!(
        rt.tunables().park_timeout_us,
        900,
        "XKAAPI_PARK_TIMEOUT_US must override"
    );
    assert_eq!(
        rt.tunables().steal_rounds_before_park,
        7,
        "XKAAPI_STEAL_ROUNDS must override"
    );
    assert_eq!(
        rt.tunables().inject.max_pending,
        123,
        "XKAAPI_MAX_PENDING must override"
    );
    assert!(rt.tunables().pin_workers, "XKAAPI_PIN must override");
    assert_eq!(
        rt.tunables().offload.launch_latency_us,
        77,
        "XKAAPI_OFFLOAD_LATENCY_US must override"
    );
    assert_eq!(
        rt.tunables().offload.io_threads,
        4,
        "XKAAPI_IO_THREADS must override"
    );
    // …and the overridden runtime still runs real work.
    let s = rt.foreach_reduce(0..1000, None, || 0u64, |a, i| *a += i as u64, |a, b| a + b);
    assert_eq!(s, 499_500);
    drop(rt);

    // …but never explicit calls: sized-to-request structures (custom
    // DistributedLanes, Reduction::with_slots) rely on this.
    let rt = Runtime::builder()
        .workers(2)
        .grain_factor(5)
        .park_timeout_us(123)
        .steal_rounds_before_park(9)
        .inject_policy(xkaapi::core::InjectPolicy {
            max_pending: 55,
            on_full: xkaapi::core::OnFull::Reject,
        })
        .pin_workers(false)
        .offload_launch_latency_us(9)
        .io_threads(1)
        .build();
    assert_eq!(
        rt.num_workers(),
        2,
        "explicit workers() must beat the environment"
    );
    assert_eq!(
        rt.tunables().grain_factor,
        5,
        "explicit grain_factor() must beat env"
    );
    assert_eq!(
        rt.tunables().park_timeout_us,
        123,
        "explicit park_timeout_us() must beat env"
    );
    assert_eq!(
        rt.tunables().steal_rounds_before_park,
        9,
        "explicit steal_rounds_before_park() must beat env"
    );
    assert_eq!(
        rt.tunables().inject.max_pending,
        55,
        "explicit inject_policy() must beat env"
    );
    assert_eq!(rt.tunables().inject.on_full, xkaapi::core::OnFull::Reject);
    assert!(
        !rt.tunables().pin_workers,
        "explicit pin_workers(false) must beat XKAAPI_PIN=1"
    );
    assert_eq!(
        rt.tunables().offload.launch_latency_us,
        9,
        "explicit offload_launch_latency_us() must beat env"
    );
    assert_eq!(
        rt.tunables().offload.io_threads,
        1,
        "explicit io_threads() must beat env"
    );
    drop(rt);

    // Malformed values are ignored (with a warning), not fatal.
    std::env::set_var("XKAAPI_WORKERS", "zero");
    std::env::set_var("XKAAPI_GRAIN_FACTOR", "-4");
    std::env::set_var("XKAAPI_PARK_TIMEOUT_US", "0");
    std::env::set_var("XKAAPI_STEAL_ROUNDS", "lots");
    std::env::set_var("XKAAPI_MAX_PENDING", "0");
    std::env::set_var("XKAAPI_PIN", "maybe");
    std::env::set_var("XKAAPI_OFFLOAD_LATENCY_US", "soon");
    std::env::set_var("XKAAPI_IO_THREADS", "0");
    let rt = Runtime::builder().build();
    assert!(rt.num_workers() >= 1);
    assert_eq!(
        rt.tunables().grain_factor,
        8,
        "junk env must fall back to the default"
    );
    assert_eq!(
        rt.tunables().park_timeout_us,
        500,
        "junk XKAAPI_PARK_TIMEOUT_US must fall back to the default"
    );
    assert_eq!(
        rt.tunables().steal_rounds_before_park,
        32,
        "junk XKAAPI_STEAL_ROUNDS must fall back to the default"
    );
    assert_eq!(
        rt.tunables().inject.max_pending,
        4096,
        "junk XKAAPI_MAX_PENDING must fall back to the default"
    );
    assert!(
        !rt.tunables().pin_workers,
        "junk XKAAPI_PIN must fall back to the default"
    );
    assert_eq!(
        rt.tunables().offload.launch_latency_us,
        20,
        "junk XKAAPI_OFFLOAD_LATENCY_US must fall back to the default"
    );
    assert_eq!(
        rt.tunables().offload.io_threads,
        2,
        "XKAAPI_IO_THREADS=0 is invalid (the io track needs a thread) and must fall back"
    );
    // An env-tuned runtime still runs real work (exercises the tuned
    // park path: tiny steal-round budget forces parking).
    std::env::set_var("XKAAPI_PARK_TIMEOUT_US", "200");
    std::env::set_var("XKAAPI_STEAL_ROUNDS", "1");
    std::env::set_var("XKAAPI_WORKERS", "3");
    std::env::set_var("XKAAPI_GRAIN_FACTOR", "11");
    std::env::set_var("XKAAPI_MAX_PENDING", "2");
    let rt = Runtime::builder().build();
    assert_eq!(rt.tunables().steal_rounds_before_park, 1);
    assert_eq!(rt.tunables().inject.max_pending, 2);
    let s = rt.foreach_reduce(0..1000, None, || 0u64, |a, i| *a += i as u64, |a, b| a + b);
    assert_eq!(s, 499_500);
    // The env-bounded admission window still serves submit traffic (Block
    // throttles the submitter at 2 pending jobs, nothing is lost).
    let handles: Vec<_> = (0..16u64)
        .map(|i| rt.submit(move |_ctx| i * 2).unwrap())
        .collect();
    let total: u64 = handles.into_iter().map(|h| h.wait()).sum();
    assert_eq!(total, (0..16u64).map(|i| i * 2).sum());
    drop(rt);

    std::env::remove_var("XKAAPI_WORKERS");
    std::env::remove_var("XKAAPI_GRAIN_FACTOR");
    std::env::remove_var("XKAAPI_PARK_TIMEOUT_US");
    std::env::remove_var("XKAAPI_STEAL_ROUNDS");
    std::env::remove_var("XKAAPI_MAX_PENDING");
    std::env::remove_var("XKAAPI_PIN");
    std::env::remove_var("XKAAPI_OFFLOAD_LATENCY_US");
    std::env::remove_var("XKAAPI_IO_THREADS");

    // XKAAPI_BENCH_TOLERANCE tunes the `smoke -- --check` regression gate
    // the same way: env overrides the default, junk falls back (the gate
    // must never be silently disabled by a typo). Same single-test binary
    // for the same reason — the variable is process-global.
    use xkaapi_bench::check::{tolerance_from_env, DEFAULT_TOLERANCE, TOLERANCE_ENV};
    assert_eq!(
        tolerance_from_env(),
        DEFAULT_TOLERANCE,
        "unset {TOLERANCE_ENV} must yield the default gate tolerance"
    );
    std::env::set_var(TOLERANCE_ENV, "0.25");
    assert_eq!(tolerance_from_env(), 0.25, "{TOLERANCE_ENV} must override");
    std::env::set_var(TOLERANCE_ENV, "not-a-number");
    assert_eq!(
        tolerance_from_env(),
        DEFAULT_TOLERANCE,
        "junk {TOLERANCE_ENV} must fall back to the default"
    );
    std::env::set_var(TOLERANCE_ENV, "-0.5");
    assert_eq!(
        tolerance_from_env(),
        DEFAULT_TOLERANCE,
        "a negative tolerance would fail every run; fall back instead"
    );
    std::env::remove_var(TOLERANCE_ENV);
}
