//! Allocation accounting of the spawn fast path (PR 6): a counting
//! `#[global_allocator]` shim measures how many heap allocations a
//! warmed-up runtime performs per spawned task.
//!
//! The load-bearing claim of the fast-path work is that the **fork-join
//! fast lane allocates nothing once warm** — `Ctx::join` pushes a
//! stack-held `JobRef` into a pre-grown T.H.E. deque, so a whole `fib`
//! tree of joins must cost O(1) allocations (scope setup), not O(joins).
//! The data-flow `ctx.spawn` path still pays its documented residual
//! allocations (the `Arc<Task>` and the boxed body — see `DESIGN.md` §6),
//! but after the PR 6 scratch-arena work it must be a small constant per
//! task: predecessor sets, slot bindings and successor lists reuse
//! frame-owned arenas instead of allocating per task.
//!
//! Kept in a dedicated integration-test binary: the counter is
//! process-global, and a second test running concurrently would pollute
//! the deltas.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use xkaapi::core::{Ctx, Runtime};

/// Counts every allocation in the process (all threads — workers too,
/// which is the point: a steal that allocates is still fast-path cost).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn fib(c: &mut Ctx<'_>, n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        let (a, b) = c.join(|c| fib(c, n - 1), |c| fib(c, n - 2));
        a + b
    }
}

/// Interior join nodes of `fib(n)`.
fn fib_joins(n: u64) -> u64 {
    if n < 2 {
        0
    } else {
        1 + fib_joins(n - 1) + fib_joins(n - 2)
    }
}

#[test]
fn warm_fib_frame_spawns_without_allocating() {
    let rt = Runtime::new(1);
    let n = 16u64;
    let joins = fib_joins(n);
    assert!(joins > 900, "need a tree large enough to expose O(joins)");

    // Warm up: grow the deques, frames and worker scratch to steady state.
    for _ in 0..3 {
        assert_eq!(rt.scope(|ctx| fib(ctx, n)), 987);
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(rt.scope(|ctx| fib(ctx, n)), 987);
    let delta = ALLOCS.load(Ordering::Relaxed) - before;

    // O(1) scope overhead is fine; anything proportional to the ~1000
    // joins means the fast lane started allocating per task again.
    assert!(
        delta < 64,
        "warm fib({n}) tree ({joins} joins) allocated {delta} times; \
         the fork-join fast path must not allocate per join"
    );
}

#[test]
fn warm_dataflow_spawn_pays_only_the_residual_constant() {
    let rt = Runtime::new(1);
    let tasks = 1_000u64;
    let run = |rt: &Runtime| {
        let sum = AtomicU64::new(0);
        rt.scope(|ctx| {
            let sum = &sum;
            for _ in 0..tasks {
                ctx.spawn([], move |_| {
                    sum.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), tasks);
    };
    for _ in 0..3 {
        run(&rt);
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    run(&rt);
    let delta = ALLOCS.load(Ordering::Relaxed) - before;

    // Each defaulted `ctx.spawn` still allocates its `Arc<Task>` and the
    // boxed body (empty access lists and the all-default slot sentinel
    // are allocation-free); everything else — predecessor sets, slot
    // scratch, successor lists, the owner's sync batch — reuses warmed
    // capacity. Budget: the 2 residual allocations plus constant slack.
    let budget = tasks * 3 + 64;
    assert!(
        delta <= budget,
        "warm spawn loop of {tasks} tasks allocated {delta} times \
         (budget {budget}); the arena reuse on the spawn path regressed"
    );
}
