//! Fault-tolerant task lifecycle (DESIGN.md §8): panic isolation,
//! cooperative cancellation, deadline admission and age promotion.
//!
//! The PR 8 acceptance gates live here: a task-body panic under every
//! queue×steal policy neither kills a worker nor hangs any join; a
//! panicked frame poisons exactly its dataflow cone (successors complete
//! as failed, countdowns drain); `JoinHandle::cancel` skips every body
//! past the cancel point on a single-worker determinism run; deadlines
//! shed at admission and drain time; starved Low jobs age up one band.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xkaapi::core::{
    AggregatedStealing, CancelToken, PerThiefStealing, Priority, Runtime, Shared, StealPolicy,
    SubmitError, TaskQueue,
};
use xkaapi::omp::OmpCentralQueue;

/// Spin-wait (with yields) until `cond` holds, panicking after `secs`.
fn wait_until(secs: u64, what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::yield_now();
    }
}

/// The four scheduler policy combinations (queue layer × steal layer).
#[allow(clippy::type_complexity)]
fn all_policies(workers: usize) -> Vec<(&'static str, Runtime)> {
    let combos: Vec<(
        &'static str,
        Option<Arc<dyn TaskQueue>>,
        Arc<dyn StealPolicy>,
    )> = vec![
        ("dist+agg", None, Arc::new(AggregatedStealing)),
        ("dist+perthief", None, Arc::new(PerThiefStealing)),
        (
            "central+agg",
            Some(Arc::new(OmpCentralQueue::new())),
            Arc::new(AggregatedStealing),
        ),
        (
            "central+perthief",
            Some(Arc::new(OmpCentralQueue::new())),
            Arc::new(PerThiefStealing),
        ),
    ];
    combos
        .into_iter()
        .map(|(name, q, s)| {
            let mut b = Runtime::builder().workers(workers).steal_policy(s);
            if let Some(q) = q {
                b = b.task_queue(q);
            }
            (name, b.build())
        })
        .collect()
}

/// A task-body panic under every queue×steal policy: the panic re-raises
/// at the scope, no worker dies, no join hangs, and the pool does real
/// work afterwards.
#[test]
fn task_panic_survives_every_policy() {
    for (name, rt) in all_policies(4) {
        let err = catch_unwind(AssertUnwindSafe(|| {
            rt.scope(|ctx| {
                let h = Shared::new(0u64);
                let h1 = h.clone();
                ctx.spawn([h.write()], move |t| {
                    *t.write(&h1) = 1;
                    panic!("planned task panic");
                });
                for _ in 0..16 {
                    let hr = h.clone();
                    ctx.spawn([h.read()], move |t| {
                        let _ = *t.read(&hr);
                    });
                }
            });
        }))
        .expect_err("the task panic must re-raise at the scope");
        assert!(
            err.downcast_ref::<&str>()
                .is_some_and(|m| m.contains("planned task panic")),
            "[{name}] unexpected payload"
        );
        let snap = rt.stats();
        assert_eq!(snap.tasks_panicked, 1, "[{name}] panic not counted");
        // Workers alive: a full fork-join + dataflow round still completes.
        assert_eq!(rt.scope(|ctx| ctx.join(|_| 6, |_| 7)), (6, 7), "[{name}]");
        let sum = rt.foreach_reduce(0..1000, None, || 0u64, |s, i| *s += i as u64, |a, b| a + b);
        assert_eq!(sum, 499_500, "[{name}]");
    }
}

/// Poisoning follows the dataflow cone exactly: in a chain a → b → c where
/// a panics, b and c complete as failed without running, while an
/// independent task still executes. Single worker keeps the counts exact.
#[test]
fn panic_poisons_exactly_the_dataflow_cone() {
    let rt = Runtime::new(1);
    let ran = Arc::new(AtomicU64::new(0));
    let err = catch_unwind(AssertUnwindSafe(|| {
        rt.scope(|ctx| {
            let h = Shared::new(0u64);
            let other = Shared::new(0u64);
            ctx.spawn([h.write()], |_| panic!("a failed"));
            let r = Arc::clone(&ran);
            ctx.spawn([h.write()], move |_| {
                r.fetch_add(1, Ordering::SeqCst);
            });
            let r = Arc::clone(&ran);
            ctx.spawn([h.read()], move |_| {
                r.fetch_add(1, Ordering::SeqCst);
            });
            let r = Arc::clone(&ran);
            ctx.spawn([other.write()], move |_| {
                r.fetch_add(100, Ordering::SeqCst);
            });
        });
    }))
    .expect_err("the cone's panic must re-raise");
    assert!(err.downcast_ref::<&str>().is_some_and(|m| *m == "a failed"));
    assert_eq!(
        ran.load(Ordering::SeqCst),
        100,
        "successors of the panicked task must not run; independent tasks must"
    );
    let snap = rt.stats();
    assert_eq!(snap.tasks_panicked, 1);
    assert_eq!(snap.tasks_poisoned, 2, "b and c completed-as-failed");
}

/// A panic inside a `foreach` chunk: the loop drains, the panic re-raises
/// at the caller, and the pool stays usable.
#[test]
fn foreach_chunk_panic_is_contained() {
    let rt = Runtime::new(4);
    let err = catch_unwind(AssertUnwindSafe(|| {
        rt.foreach(0..10_000, |i| {
            if i == 4321 {
                panic!("chunk panic at {i}");
            }
        });
    }))
    .expect_err("the chunk panic must re-raise");
    assert!(err
        .downcast_ref::<String>()
        .is_some_and(|m| m.contains("chunk panic at 4321")));
    let sum = rt.foreach_reduce(0..100, None, || 0u64, |s, i| *s += i as u64, |a, b| a + b);
    assert_eq!(sum, 4950);
}

/// A panic inside a recorded-replay group body: the replay's countdown
/// protocol still drains (no hang), the payload re-raises, and the same
/// DAG replays cleanly afterwards (poisoning is per-run state).
#[test]
fn replay_group_panic_drains_and_rethrows() {
    let rt = Runtime::new(2);
    let h = Shared::new(0u64);
    let boom = Arc::new(AtomicBool::new(true));
    let dag = {
        let (h1, h2, h3) = (h.clone(), h.clone(), h.clone());
        let b = Arc::clone(&boom);
        rt.record(|rec| {
            rec.spawn([h1.write()], move |t| {
                *t.write(&h1) = 1;
                if b.load(Ordering::SeqCst) {
                    panic!("replay member panic");
                }
            });
            let h2c = h2.clone();
            rec.spawn([h2.read(), h2.write()], move |t| *t.write(&h2c) += 10);
            let h3c = h3.clone();
            rec.spawn([h3.read(), h3.write()], move |t| *t.write(&h3c) += 100);
        })
    };
    let err = catch_unwind(AssertUnwindSafe(|| dag.replay(&rt)))
        .expect_err("the member panic must re-raise at replay");
    assert!(err
        .downcast_ref::<&str>()
        .is_some_and(|m| m.contains("replay member panic")));
    assert!(rt.stats().tasks_panicked >= 1);
    // Per-run poisoning: the same DAG replays cleanly once the fault is gone.
    boom.store(false, Ordering::SeqCst);
    dag.replay(&rt);
    assert_eq!(*h.get(), 111, "clean replay after a poisoned one");
}

/// Double consumption after a panic: the first `try_result` re-raises, the
/// second returns `None` (not a hang, not a second unwind), and the pool
/// keeps working.
#[test]
fn double_wait_after_panic_stays_usable() {
    let rt = Runtime::new(2);
    let mut handle = rt.submit(|_ctx| -> u32 { panic!("job boom") }).unwrap();
    wait_until(20, "panicked job to finish", || handle.is_done());
    let err = catch_unwind(AssertUnwindSafe(|| handle.try_result()))
        .expect_err("first poll re-raises the panic");
    assert!(err.downcast_ref::<&str>().is_some_and(|m| *m == "job boom"));
    assert_eq!(
        handle.try_result(),
        None,
        "second poll after the payload was taken must be a calm None"
    );
    assert_eq!(rt.scope(|ctx| ctx.join(|_| 2, |_| 3)), (2, 3));
}

/// Cancel a queued job before any worker drains it: the body never runs
/// and the handle reports `Err(Cancelled)`.
#[test]
fn cancel_before_drain_skips_the_body() {
    let rt = Runtime::new(1);
    // Pin the only worker so the next submission stays queued.
    let gate = Arc::new(AtomicBool::new(false));
    let g = Arc::clone(&gate);
    let busy = rt
        .submit(move |_ctx| {
            while !g.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        })
        .unwrap();
    let ran = Arc::new(AtomicBool::new(false));
    let r = Arc::clone(&ran);
    let handle = rt
        .submit(move |_ctx| {
            r.store(true, Ordering::SeqCst);
            7u32
        })
        .unwrap();
    assert!(handle.cancel(), "first cancel returns true");
    assert!(!handle.cancel(), "cancel is idempotent");
    gate.store(true, Ordering::Release);
    busy.wait();
    assert_eq!(handle.join(), Err(SubmitError::Cancelled));
    assert!(!ran.load(Ordering::SeqCst), "cancelled body must not run");
    assert_eq!(rt.stats().tasks_cancelled, 1);
}

/// The single-worker cancellation determinism gate: a deep cone of 50
/// tasks whose 10th body cancels the shared token. Every body asserts the
/// token was still live when it started — so *zero* bodies execute after
/// the cancel point — yet the scope returns (countdowns drained) and
/// executed + cancelled accounts for the whole cone.
#[test]
fn cancel_mid_cone_skips_every_later_body() {
    let rt = Runtime::new(1);
    let tok = CancelToken::new();
    let executed = Arc::new(AtomicU64::new(0));
    const N: u64 = 50;
    const CANCEL_AT: u64 = 10;
    let (t, ex) = (tok.clone(), Arc::clone(&executed));
    let handle = rt
        .task()
        .cancel_token(&tok)
        .submit(move |ctx| {
            for i in 0..N {
                let (t, ex) = (t.clone(), Arc::clone(&ex));
                let h = Shared::new(0u8);
                ctx.spawn([h.write()], move |_| {
                    assert!(
                        !t.is_cancelled(),
                        "task {i}: body ran after the cancel point"
                    );
                    ex.fetch_add(1, Ordering::SeqCst);
                    if i == CANCEL_AT {
                        t.cancel();
                    }
                });
            }
        })
        .unwrap();
    handle.join().expect("the root job itself is not cancelled");
    let ran = executed.load(Ordering::SeqCst);
    assert_eq!(
        ran,
        CANCEL_AT + 1,
        "single worker runs the cone in program order up to the cancel point"
    );
    assert_eq!(
        rt.stats().tasks_cancelled,
        N - ran,
        "every skipped task is accounted as cancelled"
    );
}

/// `Ctx::is_cancelled` exposes the inherited token inside task bodies.
#[test]
fn ctx_observes_inherited_cancellation() {
    let rt = Runtime::new(1);
    let tok = CancelToken::new();
    let t = tok.clone();
    let handle = rt
        .task()
        .cancel_token(&tok)
        .submit(move |ctx| {
            assert!(!ctx.is_cancelled());
            t.cancel();
            assert!(ctx.is_cancelled(), "cancel is visible mid-body");
            ctx.cancel_token().expect("token must be inherited")
        })
        .unwrap();
    let inner = handle.join().expect("root body already started");
    assert!(inner.is_cancelled());
}

/// A cancelled cone's parallel loop drains without executing chunks.
#[test]
fn cancelled_cone_skips_foreach_chunks() {
    let rt = Runtime::new(2);
    let tok = CancelToken::new();
    tok.cancel();
    let hits = Arc::new(AtomicU64::new(0));
    let hs = Arc::clone(&hits);
    let handle = rt
        .task()
        .cancel_token(&tok)
        .submit(move |ctx| {
            ctx.foreach(0..10_000, &|_| {
                hs.fetch_add(1, Ordering::SeqCst);
            });
        })
        .unwrap();
    assert_eq!(handle.join(), Err(SubmitError::Cancelled));
    assert_eq!(hits.load(Ordering::SeqCst), 0);
}

/// Deadline admission: an already-expired deadline sheds immediately; a
/// live one expires at drain time if the job is still queued.
#[test]
fn deadline_sheds_at_admission_and_drain() {
    let rt = Runtime::new(1);
    // Expired at submission: shed before consuming an admission slot.
    let res = rt
        .task()
        .deadline(Duration::ZERO)
        .submit(|_ctx| 1u32)
        .map(|_| ());
    assert_eq!(res, Err(SubmitError::Expired));
    // Queued past its deadline: shed at drain time.
    let gate = Arc::new(AtomicBool::new(false));
    let g = Arc::clone(&gate);
    let busy = rt
        .submit(move |_ctx| {
            while !g.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        })
        .unwrap();
    wait_until(20, "busy job to start", || {
        rt.inject_lane_stats()
            .iter()
            .map(|l| l.drained)
            .sum::<u64>()
            == 1
    });
    let ran = Arc::new(AtomicBool::new(false));
    let r = Arc::clone(&ran);
    let doomed = rt
        .task()
        .deadline(Duration::from_millis(5))
        .submit(move |_ctx| {
            r.store(true, Ordering::SeqCst);
        })
        .unwrap();
    std::thread::sleep(Duration::from_millis(20));
    gate.store(true, Ordering::Release);
    busy.wait();
    assert_eq!(doomed.join(), Err(SubmitError::Expired));
    assert!(!ran.load(Ordering::SeqCst), "expired body must not run");
    assert_eq!(rt.stats().jobs_expired, 2, "admission shed + drain shed");
    // A generous deadline does not interfere.
    let ok = rt
        .task()
        .deadline(Duration::from_secs(30))
        .submit(|_ctx| 9u32)
        .unwrap();
    assert_eq!(ok.join(), Ok(9));
}

/// Age promotion end-to-end: a starved Low job on a pinned pool ages up
/// one band and the promotion is visible in `Runtime::stats`.
#[test]
fn starved_low_job_ages_up_one_band() {
    let rt = Runtime::builder()
        .workers(1)
        .promote_low_after(Some(Duration::ZERO))
        .build();
    let gate = Arc::new(AtomicBool::new(false));
    let g = Arc::clone(&gate);
    let busy = rt
        .submit(move |_ctx| {
            while !g.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        })
        .unwrap();
    wait_until(20, "busy job to start", || {
        rt.inject_lane_stats()
            .iter()
            .map(|l| l.drained)
            .sum::<u64>()
            == 1
    });
    let low = rt
        .task()
        .priority(Priority::Low)
        .submit(|_ctx| 3u32)
        .unwrap();
    gate.store(true, Ordering::Release);
    busy.wait();
    assert_eq!(low.join(), Ok(3));
    assert_eq!(
        rt.stats().inject_promotions,
        1,
        "the starved Low entry must be promoted by the age sweep"
    );
}

/// `on_complete` callback panics are contained *and counted*.
#[test]
fn callback_panics_are_counted() {
    let rt = Runtime::new(1);
    let h = rt.submit(|_ctx| 1u32).unwrap();
    wait_until(20, "job to finish", || h.is_done());
    h.on_complete(|| panic!("reactor wake failed"));
    assert_eq!(rt.stats().callback_panics, 1);
    rt.reset_stats();
    assert_eq!(rt.stats().callback_panics, 0);
}

/// Graceful shutdown: queued jobs drain inside the window (`true`), and a
/// zero window on a saturated pool gives up honestly (`false`).
#[test]
fn shutdown_timeout_drains_queued_jobs() {
    let rt = Runtime::new(2);
    let done = Arc::new(AtomicU64::new(0));
    for _ in 0..64 {
        let d = Arc::clone(&done);
        rt.submit(move |_ctx| {
            d.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
    }
    assert!(
        rt.shutdown_timeout(Duration::from_secs(20)),
        "64 trivial jobs must drain inside the window"
    );
    assert_eq!(done.load(Ordering::SeqCst), 64, "no queued job abandoned");

    // A pinned 1-worker pool cannot drain: the zero window reports failure.
    let rt = Runtime::new(1);
    let gate = Arc::new(AtomicBool::new(true));
    let g = Arc::clone(&gate);
    rt.submit(move |_ctx| {
        while g.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
    })
    .unwrap();
    wait_until(20, "busy job to start", || {
        rt.inject_lane_stats()
            .iter()
            .map(|l| l.drained)
            .sum::<u64>()
            == 1
    });
    rt.submit(|_ctx| ()).unwrap();
    gate.store(false, Ordering::Release); // unpin so drop() can join workers
    let _ = rt.shutdown_timeout(Duration::ZERO);
}
