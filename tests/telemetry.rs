//! Integration gates of the telemetry layer (PR 9, DESIGN.md §9):
//!
//! * **span balance** — on every queue×steal policy combination, a
//!   quiesced traced run has exactly as many task/job begin events as
//!   end events (and zero ring drops at this scale);
//! * **overflow accounting** — flooding a 1-worker ring past its
//!   capacity without draining loses events *counted*, never silently;
//! * **merge associativity** — histogram merging is bucket-wise
//!   addition, so (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) and quantiles agree;
//! * **disabled cost** — with tracing compiled in but off, results are
//!   identical to a traced run, no events are recorded, and the warm
//!   fork-join fast path still allocates nothing per join.
//!
//! Kept in a dedicated integration-test binary: the allocation test
//! needs a process-global counting `#[global_allocator]`, and the tests
//! serialize on a mutex so concurrent workers never pollute the deltas.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use xkaapi::core::{Ctx, EventKind, HistogramSnapshot, Runtime, TelemetryEvent};
use xkaapi_bench::SchedPolicy;

/// Counts every allocation in the process (all threads — workers too).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// One guard per test: worker threads of a concurrently running test
/// would otherwise pollute the allocation deltas and trace counts.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// A deterministic mixed workload: data-flow tasks inside a scope (task
/// spans) plus root jobs through the submit front door (job spans).
/// Returns a checksum that must not depend on whether tracing is on.
fn workload(rt: &Runtime) -> u64 {
    let sum = AtomicU64::new(0);
    rt.scope(|ctx| {
        let sum = &sum;
        for i in 0..100u64 {
            ctx.spawn([], move |_| {
                sum.fetch_add(i.wrapping_mul(2_654_435_761), Ordering::Relaxed);
            });
        }
    });
    let handles: Vec<_> = (0..100u64)
        .map(|i| rt.submit(move |_ctx| i.wrapping_mul(40_503)).unwrap())
        .collect();
    handles
        .into_iter()
        .map(|h| h.wait())
        .fold(sum.load(Ordering::Relaxed), u64::wrapping_add)
}

fn count(events: &[TelemetryEvent], k: EventKind) -> usize {
    events.iter().filter(|e| e.kind == k).count()
}

/// Drain the trace until every worker lane has balanced task/job spans.
/// A joiner's `wait()` returns the instant the result commits — a hair
/// *before* the executing worker emits its end event — so right after a
/// workload the last end may still be in flight; it lands within
/// microseconds, and this helper retries the (accumulating) drain until
/// it has.
fn drain_balanced(rt: &Runtime, label: &str) -> (Vec<Vec<TelemetryEvent>>, u64) {
    let mut lanes: Vec<Vec<TelemetryEvent>> = Vec::new();
    let mut dropped = 0u64;
    for _ in 0..1_000 {
        let trace = rt.take_trace();
        dropped += trace.dropped();
        lanes.resize(trace.worker_count(), Vec::new());
        for (w, lane) in lanes.iter_mut().enumerate() {
            lane.extend_from_slice(trace.events(w));
        }
        let balanced = lanes.iter().all(|evs| {
            count(evs, EventKind::TaskBegin) == count(evs, EventKind::TaskEnd)
                && count(evs, EventKind::JobBegin) == count(evs, EventKind::JobEnd)
        });
        if balanced && lanes.iter().map(Vec::len).sum::<usize>() > 0 {
            return (lanes, dropped);
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    panic!("[{label}] spans never balanced after quiescence");
}

#[test]
fn every_begin_span_has_a_matching_end_on_all_policies() {
    let _g = serial();
    for policy in SchedPolicy::ALL {
        let rt = policy.build_runtime(4);
        rt.set_tracing(true);
        let checksum = workload(&rt);
        assert_ne!(checksum, 0);
        // `drain_balanced` asserts the headline property: per worker
        // lane (a task/job executes on exactly one worker), every begin
        // event has a matching end once the pool quiesces.
        let (lanes, dropped) = drain_balanced(&rt, &format!("{policy:?}"));
        assert_eq!(
            dropped, 0,
            "[{policy:?}] this workload must fit the rings; drops would \
             make span balance vacuous"
        );
        let total = |k: EventKind| -> usize { lanes.iter().map(|evs| count(evs, k)).sum() };
        // One job span per submit, plus the scope's own root job.
        assert_eq!(
            total(EventKind::JobBegin),
            101,
            "[{policy:?}] one job span per root job"
        );
        assert!(
            total(EventKind::TaskBegin) > 0,
            "[{policy:?}] no task spans recorded"
        );
    }
}

#[test]
fn ring_overflow_drops_are_counted_not_silent() {
    let _g = serial();
    let rt = Runtime::new(1);
    rt.set_tracing(true);
    // One worker, no draining while the flood runs: ≥ 3 events per job
    // (inject-drain instant + job span) times 3000 jobs overflows the
    // 4096-slot ring by far.
    let handles: Vec<_> = (0..3_000u64)
        .map(|i| rt.submit(move |_ctx| i).unwrap())
        .collect();
    let sum: u64 = handles.into_iter().map(|h| h.wait()).sum();
    assert_eq!(sum, 2_999 * 3_000 / 2);
    let trace = rt.take_trace();
    assert!(
        trace.dropped() > 0,
        "flood must overflow the ring and the drops must be counted"
    );
    assert!(trace.total_events() > 0);
    // The registry reports the same accounting.
    let m = rt.metrics();
    assert_eq!(m.get("trace_events_dropped"), Some(trace.dropped()));
}

#[test]
fn histogram_merge_is_associative() {
    let _g = serial();
    let mut parts = [
        HistogramSnapshot::new(),
        HistogramSnapshot::new(),
        HistogramSnapshot::new(),
    ];
    // Three disjoint magnitude regimes, like three workers with very
    // different latency profiles.
    let mut v = 1u64;
    for (i, part) in parts.iter_mut().enumerate() {
        for k in 0..500u64 {
            v = v.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(k);
            part.record((v % (1 << (8 * (i + 1)))).max(1));
        }
    }
    let [a, b, c] = parts;
    // (a ⊕ b) ⊕ c
    let mut left = a;
    left.merge(&b);
    left.merge(&c);
    // a ⊕ (b ⊕ c)
    let mut right_inner = b;
    right_inner.merge(&c);
    let mut right = a;
    right.merge(&right_inner);
    assert_eq!(left, right, "bucket-wise merge must be associative");
    assert_eq!(left.count(), 1_500);
    for q in [0.5, 0.99, 0.999] {
        assert_eq!(left.quantile(q), right.quantile(q));
    }
    // Quantiles are monotone in q on the merged distribution.
    assert!(left.quantile(0.5) <= left.quantile(0.99));
    assert!(left.quantile(0.99) <= left.quantile(0.999));
}

#[test]
fn disabled_tracing_changes_nothing_observable() {
    let _g = serial();
    let rt_off = Runtime::new(2);
    assert!(!rt_off.tracing_enabled(), "tracing must default to off");
    let rt_on = Runtime::new(2);
    rt_on.set_tracing(true);
    let off = workload(&rt_off);
    let on = workload(&rt_on);
    assert_eq!(off, on, "tracing must never change results");
    let m = rt_off.metrics();
    assert_eq!(m.get("trace_events_recorded"), Some(0));
    assert_eq!(m.get("trace_events_dropped"), Some(0));
    assert_eq!(rt_off.take_trace().total_events(), 0);
    assert!(rt_on.take_trace().total_events() > 0);
    // The latency quantiles of an untraced run are all zero.
    assert_eq!(rt_off.stats().latency, Default::default());
}

fn fib(c: &mut Ctx<'_>, n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        let (a, b) = c.join(|c| fib(c, n - 1), |c| fib(c, n - 2));
        a + b
    }
}

#[test]
fn disabled_tracing_keeps_the_join_fast_path_allocation_free() {
    let _g = serial();
    // Same gate as `tests/alloc_counter.rs`, re-asserted here with the
    // telemetry layer compiled in: the disabled instrumentation is one
    // relaxed load per site and must not re-introduce per-join cost.
    let rt = Runtime::new(1);
    assert!(!rt.tracing_enabled());
    for _ in 0..3 {
        assert_eq!(rt.scope(|ctx| fib(ctx, 16)), 987);
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(rt.scope(|ctx| fib(ctx, 16)), 987);
    let delta = ALLOCS.load(Ordering::Relaxed) - before;
    assert!(
        delta < 64,
        "warm fib(16) tree allocated {delta} times with tracing compiled \
         but off; the disabled telemetry path must stay allocation-free"
    );
}
