//! The attribute-carrying task API (`DESIGN.md` §5): builder-vs-legacy
//! equivalence, priority-band drain order across queue layers and the
//! inject lanes, per-priority admission shedding, and `Affinity`-driven
//! placement onto the data-owning inject lane.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use xkaapi::core::{
    Affinity, InjectPolicy, OnFull, Priority, Runtime, Shared, TaskQueue, Topology,
};
use xkaapi::omp::OmpCentralQueue;
use xkaapi::quark::QuarkCentralQueue;

fn wait_until(secs: u64, what: &str, cond: impl Fn() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(
            t0.elapsed() < Duration::from_secs(secs),
            "timed out waiting for {what}"
        );
        std::thread::yield_now();
    }
}

/// The same data-flow chain via `Ctx::spawn` and via the builder with
/// default attributes must produce identical results (they share one spawn
/// path), and non-default attributes must not change results either
/// (priority/affinity are scheduling hints, never semantics).
#[test]
fn builder_matches_legacy_spawn() {
    for prio in Priority::ALL {
        let rt = Runtime::new(3);
        let legacy = Shared::new(1u64);
        let built = Shared::new(1u64);
        rt.scope(|ctx| {
            for i in 0..50u64 {
                let lw = legacy.clone();
                ctx.spawn([legacy.exclusive()], move |t| *t.write(&lw) += i);
                let bw = built.clone();
                ctx.task()
                    .exclusive(&built)
                    .priority(prio)
                    .affinity(Affinity::Auto)
                    .spawn(move |t| *t.write(&bw) += i);
            }
        });
        assert_eq!(*legacy.get(), *built.get(), "priority {prio:?}");
        assert_eq!(*built.get(), 1 + (0..50).sum::<u64>());
    }
}

/// The builder's fork-join terminator behaves like `Ctx::join`.
#[test]
fn builder_join_runs_both_branches() {
    let rt = Runtime::new(2);
    let (a, b) = rt.scope(|ctx| ctx.task().priority(Priority::High).join(|_| 6u64, |_| 7u64));
    assert_eq!(a * b, 42);
}

/// On a single worker with a centralized (insertion-time) queue, ready
/// tasks are published eagerly at spawn and drained at sync — so the
/// execution order is exactly the banded pop order: every high-band task
/// before every normal one before every low one, FIFO within a band.
#[test]
fn high_band_drains_before_low_on_a_single_worker() {
    let queues: Vec<(&str, Arc<dyn TaskQueue>)> = vec![
        ("central-omp", Arc::new(OmpCentralQueue::new())),
        ("central-quark", Arc::new(QuarkCentralQueue::new())),
    ];
    for (name, queue) in queues {
        let rt = Runtime::builder().workers(1).task_queue(queue).build();
        let order: Mutex<Vec<(Priority, u64)>> = Mutex::new(Vec::new());
        rt.scope(|ctx| {
            let order = &order;
            // Spawn interleaved: low, normal, high, low, normal, high, …
            for i in 0..8u64 {
                for prio in [Priority::Low, Priority::Normal, Priority::High] {
                    ctx.task().priority(prio).spawn(move |_| {
                        order.lock().unwrap().push((prio, i));
                    });
                }
            }
        });
        let order = order.into_inner().unwrap();
        assert_eq!(order.len(), 24, "{name}");
        let expect: Vec<(Priority, u64)> = Priority::ALL
            .iter()
            .flat_map(|&p| (0..8u64).map(move |i| (p, i)))
            .collect();
        assert_eq!(
            order, expect,
            "{name}: bands must drain high→normal→low, FIFO within a band"
        );
    }
}

/// Root jobs queued while the only worker is busy drain band-major from
/// the inject lanes: high before normal before low, regardless of
/// submission order.
#[test]
fn inject_lanes_drain_high_band_first() {
    let rt = Runtime::builder().workers(1).build();
    let gate = Arc::new(AtomicBool::new(false));
    let g = Arc::clone(&gate);
    let busy = rt
        .submit(move |_| {
            while !g.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        })
        .unwrap();
    wait_until(20, "busy job to start", || {
        rt.inject_lane_stats()
            .iter()
            .map(|l| l.drained)
            .sum::<u64>()
            == 1
    });
    let order: Arc<Mutex<Vec<Priority>>> = Arc::new(Mutex::new(Vec::new()));
    let handles: Vec<_> = [Priority::Low, Priority::Normal, Priority::High]
        .into_iter()
        .map(|p| {
            let order = Arc::clone(&order);
            rt.task()
                .priority(p)
                .submit(move |_| order.lock().unwrap().push(p))
                .unwrap()
        })
        .collect();
    gate.store(true, Ordering::Release);
    busy.wait();
    for h in handles {
        h.wait();
    }
    assert_eq!(
        *order.lock().unwrap(),
        vec![Priority::High, Priority::Normal, Priority::Low]
    );
}

/// Per-priority admission: at the cap, low is shed while headroom remains
/// for high and normal — a high job is never rejected before a low one.
#[test]
fn low_priority_is_shed_before_high_at_the_cap() {
    let rt = Runtime::builder()
        .workers(1)
        .inject_policy(InjectPolicy {
            max_pending: 4,
            on_full: OnFull::Reject,
        })
        .build();
    let gate = Arc::new(AtomicBool::new(false));
    let g = Arc::clone(&gate);
    let busy = rt
        .submit(move |_| {
            while !g.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        })
        .unwrap();
    wait_until(20, "busy job to start", || {
        rt.inject_lane_stats()
            .iter()
            .map(|l| l.drained)
            .sum::<u64>()
            == 1
    });
    // Two pending normal jobs reach the low band's limit (max_pending/2).
    let f1 = rt.submit(|_| 1u64).unwrap();
    let f2 = rt.submit(|_| 2u64).unwrap();
    assert!(
        rt.task().priority(Priority::Low).submit(|_| 0u64).is_err(),
        "low band must shed at half the cap"
    );
    // High and normal still admit up to the full cap…
    let f3 = rt.task().priority(Priority::High).submit(|_| 3u64).unwrap();
    let f4 = rt.submit(|_| 4u64).unwrap();
    // …then everyone is capped (high is never shed *before* low).
    assert!(rt.task().priority(Priority::High).submit(|_| 0u64).is_err());
    assert!(rt.submit(|_| 0u64).is_err());
    assert!(rt.task().priority(Priority::Low).submit(|_| 0u64).is_err());
    assert_eq!(rt.stats().jobs_rejected, 4);
    gate.store(true, Ordering::Release);
    busy.wait();
    assert_eq!(
        f1.wait() + f2.wait() + f3.wait() + f4.wait(),
        10,
        "admitted jobs all run"
    );
}

/// `Affinity::Auto` submits land in the inject lane of the node owning
/// the declared data — and are therefore drained from that lane (jobs
/// never migrate between lanes), the ≥ 80 % acceptance property.
#[test]
fn auto_affinity_lands_submits_on_the_data_owning_lane() {
    let workers = 4;
    let rt = Runtime::builder()
        .workers(workers)
        .topology(Topology::two_level(workers, 2))
        .build();
    assert_eq!(rt.inject_lane_count(), 2);
    let h = Shared::new(vec![0u64; 64]);
    h.set_home(1);
    assert_eq!(h.home_node(), Some(1));
    let jobs = 200u64;
    let handles: Vec<_> = (0..jobs)
        .map(|i| {
            rt.task()
                .reads(&h)
                .affinity(Affinity::Auto)
                .submit(move |_| i)
                .unwrap()
        })
        .collect();
    let total: u64 = handles.into_iter().map(|h| h.wait()).sum();
    assert_eq!(total, (0..jobs).sum::<u64>());
    let lanes = rt.inject_lane_stats();
    assert_eq!(
        lanes[1].submitted, jobs,
        "every Auto submit must target the data-owning lane"
    );
    assert_eq!(lanes[1].drained, jobs);
    let owning_share = lanes[1].drained as f64 / jobs as f64;
    assert!(owning_share >= 0.8, "acceptance floor: {owning_share}");

    // Explicit Affinity::Node targets directly; a nonexistent node falls
    // back to the submitter hash (never panics, never loses the job).
    rt.task()
        .affinity(Affinity::Node(0))
        .submit(|_| ())
        .unwrap()
        .wait();
    assert_eq!(rt.inject_lane_stats()[0].submitted, 1);
    rt.task()
        .affinity(Affinity::Node(99))
        .submit(|_| ())
        .unwrap()
        .wait();
    let after: u64 = rt.inject_lane_stats().iter().map(|l| l.submitted).sum();
    assert_eq!(after, jobs + 2);
}

/// First-touch: the first task-side write through a handle records the
/// writing worker's node as the handle's home, and later `Affinity::Auto`
/// accesses carry it.
#[test]
fn first_touch_records_the_home_node() {
    let rt = Runtime::builder()
        .workers(2)
        .topology(Topology::two_level(2, 2))
        .build();
    let h = Shared::new(0u64);
    assert_eq!(h.home_node(), None);
    rt.scope(|ctx| {
        let hw = h.clone();
        ctx.spawn([h.write()], move |t| *t.write(&hw) = 7);
    });
    // Both workers sit on node 0 of this 1-node-of-2 topology.
    assert_eq!(h.home_node(), Some(0));
    // Explicit homes win over later first-touches.
    h.set_home(0);
    rt.scope(|ctx| {
        let hw = h.clone();
        ctx.spawn([h.exclusive()], move |t| *t.write(&hw) += 1);
    });
    assert_eq!(h.home_node(), Some(0));
    assert_eq!(*h.get(), 8);
}

/// `JobBuilder::detach` is fire-and-forget: the job runs without a handle.
#[test]
fn detach_runs_to_completion() {
    let rt = Runtime::new(2);
    let flag = Arc::new(AtomicBool::new(false));
    let f = Arc::clone(&flag);
    rt.task()
        .priority(Priority::High)
        .detach(move |_| f.store(true, Ordering::Release))
        .unwrap();
    wait_until(20, "detached job to run", || flag.load(Ordering::Acquire));
}

/// PR 6 equivalence suite for the monomorphized spawn lowering: the
/// defaulted builder path (`#[inline]`, no attribute plumbing) and the
/// attributed slow path (`#[cold]`, banded structures activated) must
/// produce identical checksums and task counts on the same program,
/// across the queue policies × aggregation on/off. The per-run
/// `tasks_with_attrs` counter proves which lowering actually ran: exactly
/// zero on the defaulted path, every spawn on the attributed one.
#[test]
fn default_and_attributed_lowering_agree_everywhere() {
    const CHAIN: u64 = 40;
    const WIDE: u64 = 40;

    // Deterministic mixed workload: an exclusive chain (order-dependent
    // arithmetic), a wide independent layer, and nested joins. Returns a
    // schedule-independent checksum.
    fn workload(rt: &Runtime, attributed: bool) -> u64 {
        let cell = Shared::new(1u64);
        let wide: Vec<Shared<u64>> = (0..WIDE).map(|_| Shared::new(0)).collect();
        rt.scope(|ctx| {
            for i in 0..CHAIN {
                let cw = cell.clone();
                let b = ctx.task().exclusive(&cell);
                let b = if attributed {
                    b.priority(if i % 2 == 0 {
                        Priority::High
                    } else {
                        Priority::Low
                    })
                    .affinity(Affinity::Auto)
                } else {
                    b
                };
                b.spawn(move |t| {
                    let mut r = t.write(&cw);
                    *r = (*r).wrapping_mul(3).wrapping_add(i);
                });
            }
            for (i, w) in wide.iter().enumerate() {
                let ww = w.clone();
                let b = ctx.task().writes(w);
                let b = if attributed {
                    b.priority(Priority::High)
                } else {
                    b
                };
                b.spawn(move |t| *t.write(&ww) = (i as u64 + 2).wrapping_mul(7));
            }
        });
        let joins = rt.scope(|ctx| {
            if attributed {
                let (a, (b, c)) = ctx
                    .task()
                    .priority(Priority::High)
                    .join(|c| fibj(c, 10), |c| c.join(|c| fibj(c, 9), |c| fibj(c, 8)));
                a + b + c
            } else {
                let (a, (b, c)) =
                    ctx.join(|c| fibj(c, 10), |c| c.join(|c| fibj(c, 9), |c| fibj(c, 8)));
                a + b + c
            }
        });
        let wide_sum = wide.iter().map(|w| *w.get()).fold(0u64, u64::wrapping_add);
        cell.get()
            .wrapping_mul(31)
            .wrapping_add(wide_sum)
            .wrapping_add(joins)
    }

    fn fibj(c: &mut xkaapi::core::Ctx<'_>, n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            let (a, b) = c.join(|c| fibj(c, n - 1), |c| fibj(c, n - 2));
            a + b
        }
    }

    let mk_queues = || -> Vec<(&'static str, Option<Arc<dyn TaskQueue>>)> {
        vec![
            ("distributed", None),
            ("central-omp", Some(Arc::new(OmpCentralQueue::new()))),
            ("central-quark", Some(Arc::new(QuarkCentralQueue::new()))),
        ]
    };

    let mut reference = None;
    for (qname, queue) in mk_queues() {
        for aggregation in [true, false] {
            let queue = queue.clone();
            let build = |q: Option<Arc<dyn TaskQueue>>| {
                let mut b = Runtime::builder().workers(3).aggregation(aggregation);
                if let Some(q) = q {
                    b = b.task_queue(q);
                }
                b.build()
            };
            let tag = format!("{qname}/agg={aggregation}");

            let rt = build(queue.clone());
            let fast = workload(&rt, false);
            assert_eq!(
                rt.stats().tasks_with_attrs,
                0,
                "[{tag}] defaulted spawns must never take the attributed path"
            );
            drop(rt);

            let rt = build(queue);
            let slow = workload(&rt, true);
            assert!(
                rt.stats().tasks_with_attrs >= CHAIN + WIDE,
                "[{tag}] every attributed spawn must be counted, got {}",
                rt.stats().tasks_with_attrs
            );

            assert_eq!(fast, slow, "[{tag}] lowerings disagree");
            match reference {
                None => reference = Some(fast),
                Some(r) => assert_eq!(r, fast, "[{tag}] checksum differs across policies"),
            }
        }
    }
}
