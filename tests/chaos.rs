//! Seeded chaos suite (DESIGN.md §8): runs the three canonical workloads
//! — fork-join fib, a cholesky-like dataflow wavefront, and a submit
//! flood — under deterministic fault plans across all four scheduler
//! policy combinations, asserting the fault-tolerance invariants:
//!
//! * **no hang** — every scope returns and every handle resolves (the
//!   whole suite is bounded by per-wait timeouts);
//! * **no lost join** — a planned panic re-raises at exactly one join,
//!   never vanishes;
//! * **checksum integrity** — the surviving cone (tasks outside the
//!   poisoned cone) computes exactly what it computes in a fault-free
//!   run;
//! * **workers alive** — after the chaos, the same pool completes a
//!   clean fork-join + dataflow + loop round.
//!
//! Seeds: three fixed ones always run; `RUST_SEED` (CI rotates it per
//! run) adds a fourth. Every assertion message includes the seed so a CI
//! failure is reproducible locally with `RUST_SEED=<seed>`.
//!
//! Build with the hooks compiled in:
//! `cargo test --features fault-injection --test chaos`
#![cfg(feature = "fault-injection")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use xkaapi::core::{
    AggregatedStealing, CancelToken, Ctx, FaultPlan, PerThiefStealing, Runtime, Shared,
    StatsSnapshot, StealPolicy, TaskQueue,
};
use xkaapi::omp::OmpCentralQueue;

const FIXED_SEEDS: [u64; 3] = [42, 0xdead_beef, 20260808];

/// The seeds of this run: the three fixed ones plus `RUST_SEED` when set.
fn seeds() -> Vec<u64> {
    let mut s = FIXED_SEEDS.to_vec();
    if let Ok(v) = std::env::var("RUST_SEED") {
        if let Ok(n) = v.trim().parse::<u64>() {
            s.push(n);
        } else {
            eprintln!("chaos: ignoring unparsable RUST_SEED={v:?}");
        }
    }
    s
}

/// Build one of the four queue×steal policy combinations.
fn build_rt(combo: usize, workers: usize, plan: FaultPlan) -> Runtime {
    let steal: Arc<dyn StealPolicy> = if combo.is_multiple_of(2) {
        Arc::new(AggregatedStealing)
    } else {
        Arc::new(PerThiefStealing)
    };
    let mut b = Runtime::builder()
        .workers(workers)
        .steal_policy(steal)
        .fault_plan(plan);
    if combo >= 2 {
        let q: Arc<dyn TaskQueue> = Arc::new(OmpCentralQueue::new());
        b = b.task_queue(q);
    }
    b.build()
}

const COMBO_NAMES: [&str; 4] = [
    "dist+agg",
    "dist+perthief",
    "central+agg",
    "central+perthief",
];

fn fib(c: &mut Ctx<'_>, n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        let (a, b) = c.join(move |c| fib(c, n - 1), move |c| fib(c, n - 2));
        a + b
    }
}

/// Fault-free reference checksum of the dataflow wavefront.
fn wavefront_reference(n: usize) -> u64 {
    let mut grid = vec![vec![0u64; n]; n];
    for i in 0..n {
        for j in 0..n {
            let up = if i > 0 { grid[i - 1][j] } else { 1 };
            let left = if j > 0 { grid[i][j - 1] } else { 1 };
            grid[i][j] = up.wrapping_add(left).wrapping_mul(2654435761);
        }
    }
    grid[n - 1][n - 1]
}

/// Cholesky-like dataflow wavefront: an n×n grid of tasks where (i,j)
/// reads (i-1,j) and (i,j-1) — the dependency shape of a tiled factor
/// sweep. Returns the checksum of the last tile, or the caught panic.
fn wavefront(rt: &Runtime, n: usize) -> Result<u64, Box<dyn std::any::Any + Send>> {
    let tiles: Vec<Shared<u64>> = (0..n * n).map(|_| Shared::new(0u64)).collect();
    let res = catch_unwind(AssertUnwindSafe(|| {
        rt.scope(|ctx| {
            for i in 0..n {
                for j in 0..n {
                    let me = tiles[i * n + j].clone();
                    let up = (i > 0).then(|| tiles[(i - 1) * n + j].clone());
                    let left = (j > 0).then(|| tiles[i * n + j - 1].clone());
                    let mut accs = vec![me.write()];
                    accs.extend(up.as_ref().map(|h| h.read()));
                    accs.extend(left.as_ref().map(|h| h.read()));
                    ctx.spawn(accs, move |t| {
                        let u = up.as_ref().map_or(1, |h| *t.read(h));
                        let l = left.as_ref().map_or(1, |h| *t.read(h));
                        *t.write(&me) = u.wrapping_add(l).wrapping_mul(2654435761);
                    });
                }
            }
        });
    }));
    res.map(|()| *tiles[n * n - 1].get())
}

/// One full chaos round on one pool: fib + wavefront + submit flood, all
/// panics caught at their joins, then the workers-alive probe.
fn chaos_round(rt: &Runtime, seed: u64, name: &str) -> StatsSnapshot {
    // Fork-join fib: the planned panic (if it lands here) re-raises at the
    // scope — caught, never lost, never hung.
    let fib_res = catch_unwind(AssertUnwindSafe(|| rt.scope(|c| fib(c, 17))));
    if let Ok(v) = fib_res {
        assert_eq!(v, 1597, "[{name} seed={seed}] fib checksum");
    }

    // Dataflow wavefront: either the fault-free checksum or a caught panic
    // (a poisoned cone never produces a *wrong* checksum — the scope
    // rethrows instead of returning).
    match wavefront(rt, 8) {
        Ok(sum) => assert_eq!(
            sum,
            wavefront_reference(8),
            "[{name} seed={seed}] wavefront checksum"
        ),
        Err(p) => {
            let msg = p
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default();
            assert!(
                msg.contains("fault-injection"),
                "[{name} seed={seed}] only the planned panic may surface: {msg:?}"
            );
        }
    }

    // Submit flood: every handle resolves (ok or the planned panic).
    let flood = 64u64;
    let handles: Vec<_> = (0..flood)
        .map(|i| rt.submit(move |_| i * 3).expect("admission (Block)"))
        .collect();
    let mut ok = 0u64;
    for (i, h) in handles.into_iter().enumerate() {
        // An Err payload means the planned panic landed in this job.
        if let Ok(v) = catch_unwind(AssertUnwindSafe(|| h.wait())) {
            assert_eq!(v, i as u64 * 3, "[{name} seed={seed}] flood value");
            ok += 1;
        }
    }
    assert!(
        ok >= flood - 1,
        "[{name} seed={seed}] at most one flood job may absorb the planned panic"
    );

    // Workers alive at shutdown: a clean round on the same (chaos-shaken)
    // pool — fork-join, dataflow and a loop all still complete.
    assert_eq!(
        rt.scope(|c| c.join(|_| 6, |_| 7)),
        (6, 7),
        "[{name} seed={seed}] fork-join after chaos"
    );
    let sum = rt.foreach_reduce(0..1000, None, || 0u64, |s, i| *s += i as u64, |a, b| a + b);
    assert_eq!(sum, 499_500, "[{name} seed={seed}] loop after chaos");
    rt.stats()
}

/// The chaos matrix: every seed × every policy combination.
#[test]
fn chaos_matrix_no_hang_no_lost_join() {
    for seed in seeds() {
        for (combo, name) in COMBO_NAMES.iter().enumerate() {
            let rt = build_rt(combo, 4, FaultPlan::from_seed(seed));
            let snap = chaos_round(&rt, seed, name);
            assert!(
                snap.tasks_panicked <= 1,
                "[{name} seed={seed}] one plan, at most one planned panic"
            );
            drop(rt); // workers join cleanly (a dead worker would hang here)
        }
    }
}

/// Determinism gate: two single-worker runs of the same seed produce
/// identical lifecycle stats (the curated, schedule-independent subset).
#[test]
fn chaos_single_worker_runs_are_deterministic() {
    let curated = |s: &StatsSnapshot| {
        (
            s.tasks_spawned,
            s.tasks_executed(),
            s.tasks_panicked,
            s.tasks_poisoned,
            s.tasks_cancelled,
            s.jobs_submitted,
        )
    };
    for seed in seeds() {
        let run = || {
            let rt = build_rt(0, 1, FaultPlan::from_seed(seed));
            chaos_round(&rt, seed, "determinism")
        };
        let (a, b) = (run(), run());
        assert_eq!(
            curated(&a),
            curated(&b),
            "[seed={seed}] same seed, same single-worker run, different stats"
        );
    }
}

/// Seeded cancellation: the plan cancels a token once the global task-step
/// counter passes a threshold; the cancellable cone drains (scope returns
/// or reports cancelled) and the pool survives.
#[test]
fn chaos_planned_cancellation_drains() {
    for seed in seeds() {
        let tok = CancelToken::new();
        let plan = FaultPlan::new().cancel_at(20, tok.clone());
        let rt = build_rt((seed % 4) as usize, 2, plan);
        let executed = Arc::new(AtomicU64::new(0));
        let (t, ex) = (tok.clone(), Arc::clone(&executed));
        let handle = rt
            .task()
            .cancel_token(&tok)
            .submit(move |ctx| {
                for _ in 0..200 {
                    let ex = Arc::clone(&ex);
                    let h = Shared::new(0u8);
                    ctx.spawn([h.write()], move |_| {
                        ex.fetch_add(1, Ordering::SeqCst);
                    });
                }
                t.is_cancelled()
            })
            .unwrap();
        // No hang: the cone drains even though most bodies are skipped.
        let _ = handle.join().expect("root body started before the cancel");
        assert!(tok.is_cancelled(), "[seed={seed}] the plan fired");
        let snap = rt.stats();
        assert!(
            snap.tasks_cancelled > 0,
            "[seed={seed}] cancellation skipped at least one body"
        );
        assert_eq!(
            executed.load(Ordering::SeqCst) + snap.tasks_cancelled,
            200,
            "[seed={seed}] every spawned task either ran or was counted cancelled"
        );
        assert_eq!(rt.scope(|c| c.join(|_| 1, |_| 2)), (1, 2));
    }
}

/// Seeded fault at the offload transfer/launch boundary (DESIGN.md §10):
/// the offload engine runs the task-execute hook before each batch
/// launch, so a planned panic lands *inside the engine*, off any CPU
/// worker. The invariants are the same as a CPU-side fault: no hang (the
/// scope returns, rethrowing the planned payload), the downstream cone is
/// poisoned instead of computing garbage, and both the pool and the
/// engine serve clean work afterwards.
#[test]
fn chaos_offload_fault_at_launch_boundary() {
    let chain = 24u64;
    for &nth in &[2u64, 5, 11] {
        for (combo, name) in COMBO_NAMES.iter().enumerate() {
            let rt = build_rt(combo, 2, FaultPlan::new().panic_nth(nth));
            let h = Shared::new(0u64);
            let res = catch_unwind(AssertUnwindSafe(|| {
                rt.scope(|ctx| {
                    for _ in 0..chain {
                        let hw = h.clone();
                        ctx.task()
                            .access(h.exclusive())
                            .track(xkaapi::core::Track::Offload)
                            .spawn(move |t| *t.write(&hw) += 1);
                    }
                });
            }));
            // No hang: we got here. The planned panic either landed in
            // the offload chain (scope rethrows it, partial sum) or hit
            // the root body before any spawn (empty sum) — never a wrong
            // full sum.
            let snap = rt.stats();
            match res {
                Err(p) => {
                    let msg = p
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_default();
                    assert!(
                        msg.contains("fault-injection"),
                        "[{name} nth={nth}] only the planned panic may surface: {msg:?}"
                    );
                    assert!(
                        *h.get() < chain,
                        "[{name} nth={nth}] a faulted chain must not complete"
                    );
                    assert!(
                        snap.tasks_poisoned > 0 || snap.tasks_offloaded == 0,
                        "[{name} nth={nth}] the cone downstream of the fault is poisoned \
                         (poisoned {}, offloaded {})",
                        snap.tasks_poisoned,
                        snap.tasks_offloaded
                    );
                }
                Ok(()) => {
                    // The plan fired before the scope (builder/registration
                    // paths also execute hooks) — the chain itself is clean.
                    assert_eq!(*h.get(), chain, "[{name} nth={nth}] clean chain sum");
                }
            }
            assert!(
                snap.tasks_panicked <= 1,
                "[{name} nth={nth}] one plan, at most one planned panic"
            );
            // Pool and engine alive: a clean offload round on the same rt.
            let probe = Shared::new(0u64);
            rt.scope(|ctx| {
                for _ in 0..4 {
                    let pw = probe.clone();
                    ctx.task()
                        .access(probe.exclusive())
                        .track(xkaapi::core::Track::Offload)
                        .spawn(move |t| *t.write(&pw) += 1);
                }
            });
            assert_eq!(
                *probe.get(),
                4,
                "[{name} nth={nth}] engine alive after fault"
            );
            drop(rt); // a dead engine thread would hang the join here
        }
    }
}

/// The straggler delay alone (no panic) never changes results — only
/// timing. Guards the worker-boundary hook against semantic drift.
#[test]
fn chaos_straggler_delay_is_semantically_invisible() {
    let plan = FaultPlan::new().delay_worker(0, Duration::from_micros(200));
    let rt = build_rt(0, 4, plan);
    assert_eq!(rt.scope(|c| fib(c, 15)), 610);
    assert_eq!(wavefront(&rt, 6).expect("no panic planned"), {
        wavefront_reference(6)
    });
    assert_eq!(rt.stats().tasks_panicked, 0);
}
