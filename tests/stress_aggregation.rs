//! Contention stress test for steal-request aggregation (flat combining).
//!
//! Many fine-grained data-flow tasks are spawned from one producer scope on
//! a pool of ≥ 8 workers: every worker except the one running the producer
//! can only obtain work by stealing, so steal requests pile up — the regime
//! the paper's request aggregation targets. The test asserts that
//!
//! 1. results are identical with aggregation on and off (the policy changes
//!    only *who* serves requests, never the visible semantics), and
//! 2. the combiner actually served requests under both policies
//!    (`StatsSnapshot::combine_served` > 0), with batch aggregation
//!    (`aggregated_requests`, batches of ≥ 2) observed under the
//!    aggregating policy.
//!
//! Scheduling is timing-dependent, so the stats conditions are checked over
//! repeated rounds (stats accumulate across rounds) with a generous bound;
//! the *result* equality is asserted on every round unconditionally.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xkaapi::core::{
    HierarchicalVictim, LocalityFirst, Runtime, Shared, StealPolicy, Topology, UniformVictim,
};

const WORKERS: usize = 8;
const CHAINS: usize = 32;
const CHAIN_LEN: usize = 40;
const MAX_ROUNDS: usize = 25;

/// ~1 µs of un-optimizable work, so thieves can win claims from the owner.
#[inline]
fn busy(tag: u64) -> u64 {
    let mut acc = tag;
    for i in 0..400u64 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    std::hint::black_box(acc)
}

/// Spawn `CHAINS` exclusive-access chains of `CHAIN_LEN` tasks each, plus a
/// wide layer of independent tasks. Returns (chain values, wide checksum).
fn run_workload(rt: &Runtime) -> (Vec<u64>, u64) {
    let cells: Vec<Shared<u64>> = (0..CHAINS).map(|_| Shared::new(0)).collect();
    let wide = AtomicU64::new(0);
    rt.scope(|ctx| {
        // Interleave chain links so consecutive spawns hit different
        // handles: plenty of simultaneously-ready tasks to fight over.
        for step in 0..CHAIN_LEN as u64 {
            for c in &cells {
                let cw = c.clone();
                ctx.spawn([c.exclusive()], move |t| {
                    busy(step);
                    let mut g = t.write(&cw);
                    *g = g.wrapping_mul(31).wrapping_add(step);
                });
            }
        }
        let wide_ref = &wide;
        for i in 0..512u64 {
            ctx.spawn([], move |_| {
                busy(i);
                wide_ref.fetch_add(i * i, Ordering::Relaxed);
            });
        }
    });
    let chains: Vec<u64> = cells.iter().map(|c| *c.get()).collect();
    (chains, wide.load(Ordering::Relaxed))
}

fn expected_chain() -> u64 {
    (0..CHAIN_LEN as u64).fold(0, |a, s| a.wrapping_mul(31).wrapping_add(s))
}

#[test]
fn aggregation_on_off_identical_results_with_combiner_activity() {
    let rt_on = Runtime::builder()
        .workers(WORKERS)
        .aggregation(true)
        .build();
    let rt_off = Runtime::builder()
        .workers(WORKERS)
        .aggregation(false)
        .build();
    assert_eq!(rt_on.steal_policy_name(), "aggregated");
    assert_eq!(rt_off.steal_policy_name(), "per-thief");
    rt_on.reset_stats();
    rt_off.reset_stats();

    let expect = expected_chain();
    for round in 0..MAX_ROUNDS {
        let (chains_on, wide_on) = run_workload(&rt_on);
        let (chains_off, wide_off) = run_workload(&rt_off);

        // Identical semantics, every round.
        assert!(
            chains_on.iter().all(|&c| c == expect),
            "round {round}: {chains_on:?}"
        );
        assert_eq!(
            chains_on, chains_off,
            "round {round}: aggregation changed results"
        );
        assert_eq!(
            wide_on, wide_off,
            "round {round}: independent tasks diverged"
        );

        // Stop as soon as both policies showed the combiner behaviour under
        // test (stats accumulate across rounds).
        let (s_on, s_off) = (rt_on.stats(), rt_off.stats());
        if s_on.combine_served > 0
            && s_on.aggregated_requests > 0
            && s_on.tasks_executed_stolen > 0
            && s_off.combine_served > 0
        {
            break;
        }
    }

    let s_on = rt_on.stats();
    let s_off = rt_off.stats();
    // 2. Combiners served steal requests under both policies.
    for (name, s) in [("on", &s_on), ("off", &s_off)] {
        assert!(
            s.combine_served > 0,
            "aggregation {name}: combiner never served: {s:?}"
        );
        assert!(
            s.combine_batches > 0,
            "aggregation {name}: no combine batches: {s:?}"
        );
        assert!(
            s.steal_attempts > 0,
            "aggregation {name}: no steal pressure: {s:?}"
        );
    }
    // 3. Aggregation served whole batches (requests of >= 2 thieves), and
    //    work genuinely migrated.
    assert!(
        s_on.aggregated_requests > 0,
        "aggregation on: no batch of >= 2 requests in {MAX_ROUNDS} rounds: {s_on:?}"
    );
    assert!(
        s_on.tasks_executed_stolen > 0,
        "no task ever migrated: {s_on:?}"
    );
    // Per-thief policy never serves more than one request per combine.
    assert_eq!(
        s_off.combine_served, s_off.combine_batches,
        "per-thief policy must serve exactly one request per combine"
    );
}

/// Topology-aware stealing preserves results on the aggregation stress
/// workload: the victim-selection policies (hierarchical escalation,
/// locality-first ring walk, bounded near-first combiner batches and the
/// overflow-request re-queue they exercise) change only *where* steals
/// land, never the visible semantics.
#[test]
fn topology_aware_stealing_preserves_results_under_stress() {
    let expect = expected_chain();
    let rt_ref = Runtime::builder().workers(WORKERS).build();
    let (reference, wide_ref) = run_workload(&rt_ref);
    assert!(reference.iter().all(|&c| c == expect));
    drop(rt_ref);

    // Tiny bounded batches (max_batch: 2 on 8 workers) force the overflow
    // re-queue path constantly; an aggressive escalation threshold forces
    // both the local-only and machine-wide victim regimes.
    let policies: [(&str, Arc<dyn StealPolicy>); 4] = [
        ("uniform", Arc::new(UniformVictim)),
        (
            "hierarchical",
            Arc::new(HierarchicalVictim {
                escalate_after: 2,
                max_batch: 2,
            }),
        ),
        (
            "locality-first",
            Arc::new(LocalityFirst {
                escalate_after: 2,
                max_batch: 2,
            }),
        ),
        (
            "hierarchical-wide",
            Arc::new(HierarchicalVictim {
                escalate_after: 64,
                max_batch: usize::MAX,
            }),
        ),
    ];
    for (label, pol) in policies {
        let rt = Runtime::builder()
            .workers(WORKERS)
            .steal_policy(pol)
            .topology(Topology::two_level(WORKERS, 4))
            .build();
        for round in 0..3 {
            let (chains, wide) = run_workload(&rt);
            assert_eq!(chains, reference, "{label} round {round}: chains diverged");
            assert_eq!(
                wide, wide_ref,
                "{label} round {round}: independent tasks diverged"
            );
        }
        let s = rt.stats();
        assert!(
            s.steal_attempts > 0,
            "{label}: no steal pressure at all: {s:?}"
        );
    }
}

/// The same stress shape through the engine's centralized queues: results
/// must match the distributed runs too (the cross-policy acceptance gate).
#[test]
fn centralized_queues_agree_under_stress() {
    let rt = Runtime::builder().workers(WORKERS).build();
    let (reference, wide_ref) = run_workload(&rt);
    assert!(reference.iter().all(|&c| c == expected_chain()));

    for (label, queue) in [
        (
            "omp",
            std::sync::Arc::new(xkaapi::omp::OmpCentralQueue::new())
                as std::sync::Arc<dyn xkaapi::core::TaskQueue>,
        ),
        (
            "quark",
            std::sync::Arc::new(xkaapi::quark::QuarkCentralQueue::new())
                as std::sync::Arc<dyn xkaapi::core::TaskQueue>,
        ),
    ] {
        let rt_c = Runtime::builder()
            .workers(WORKERS)
            .task_queue(queue)
            .build();
        let (chains, wide) = run_workload(&rt_c);
        assert_eq!(chains, reference, "central-{label} diverged on chains");
        assert_eq!(
            wide, wide_ref,
            "central-{label} diverged on independent tasks"
        );
    }
}
