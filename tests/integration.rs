//! Cross-crate integration tests: the same algorithms produce identical
//! results on every runtime in the repository, and the simulator respects
//! the theoretical scheduling bounds.

use std::sync::Arc;
use xkaapi::core::Runtime;
use xkaapi::epx::{run as epx_run, ExecMode, Scenario};
use xkaapi::linalg::{cholesky_quark, cholesky_seq, cholesky_static, cholesky_xkaapi, TiledMatrix};
use xkaapi::omp::{OmpPool, Schedule};
use xkaapi::quark::Quark;
use xkaapi::skyline::{ldlt_omp, ldlt_seq, ldlt_xkaapi, solve, BlockSkyline, SkylineMatrix};

#[test]
fn cholesky_identical_across_all_runtimes() {
    let orig = TiledMatrix::spd_random(160, 32, 99);
    let mut reference = orig.clone_matrix();
    cholesky_seq(&mut reference).unwrap();

    let rt = Arc::new(Runtime::new(4));
    let a = cholesky_xkaapi(&rt, orig.clone_matrix()).unwrap();
    assert_eq!(a.max_abs_diff_lower(&reference), 0.0, "xkaapi dataflow");

    let q = Quark::new_centralized(3);
    let mut b = orig.clone_matrix();
    cholesky_quark(&q, &mut b).unwrap();
    assert_eq!(b.max_abs_diff_lower(&reference), 0.0, "quark centralized");

    let q2 = Quark::new_on_xkaapi(Arc::clone(&rt));
    let mut c = orig.clone_matrix();
    cholesky_quark(&q2, &mut c).unwrap();
    assert_eq!(c.max_abs_diff_lower(&reference), 0.0, "quark on xkaapi");

    let mut d = orig.clone_matrix();
    cholesky_static(3, &mut d).unwrap();
    assert_eq!(d.max_abs_diff_lower(&reference), 0.0, "plasma static");
}

#[test]
fn skyline_ldlt_identical_across_runtimes_and_solves() {
    let a = SkylineMatrix::generate_spd(400, 0.06, 21);
    let mut f_seq = BlockSkyline::from_skyline(&a, 32);
    ldlt_seq(&mut f_seq);

    let rt = Runtime::new(4);
    let f_k = ldlt_xkaapi(&rt, BlockSkyline::from_skyline(&a, 32));
    let pool = OmpPool::new(4);
    let mut f_o = BlockSkyline::from_skyline(&a, 32);
    ldlt_omp(&pool, &mut f_o);

    for i in (0..400).step_by(7) {
        for j in (0..=i).step_by(3) {
            assert_eq!(f_k.at(i, j), f_seq.at(i, j), "xkaapi ({i},{j})");
            assert_eq!(f_o.at(i, j), f_seq.at(i, j), "omp ({i},{j})");
        }
    }

    // Solve round-trip through each factor.
    let x_true: Vec<f64> = (0..400).map(|i| (i as f64 * 0.29).sin()).collect();
    let b = a.mvp(&x_true);
    for (name, f) in [("seq", &f_seq), ("xkaapi", &f_k), ("omp", &f_o)] {
        let x = solve(f, &b);
        let err = x
            .iter()
            .zip(&x_true)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 1e-6, "{name}: solve error {err}");
    }
}

#[test]
fn epx_scenarios_deterministic_across_modes() {
    for name in ["MEPPEN", "MAXPLANE"] {
        let mut sc = if name == "MEPPEN" {
            Scenario::meppen(1)
        } else {
            Scenario::maxplane(1)
        };
        sc.steps = 2;
        sc.other_work = 100;
        sc.elem_subcycles = 4;
        let r_seq = epx_run(&sc, &ExecMode::Seq);
        let rt = Runtime::new(3);
        let r_rt = epx_run(&sc, &ExecMode::Xkaapi(&rt));
        let pool = OmpPool::new(3);
        let r_omp = epx_run(&sc, &ExecMode::Omp(&pool, Schedule::Guided(8)));
        assert!(
            (r_seq.checksum - r_rt.checksum).abs() < 1e-9,
            "{name} xkaapi"
        );
        assert!((r_seq.checksum - r_omp.checksum).abs() < 1e-9, "{name} omp");
        assert_eq!(
            r_seq.last_candidates, r_rt.last_candidates,
            "{name} candidates"
        );
        assert_eq!(r_seq.h_order, r_omp.h_order, "{name} H order");
    }
}

#[test]
fn quark_backends_agree_on_random_graphs() {
    use std::sync::Mutex;
    // A fixed random program of inout/input ops over 16 keys must produce
    // the sequential-order result on both backends.
    let mut state = 0xDEAD_BEEFu64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let ops: Vec<(usize, usize, u64)> = (0..300)
        .map(|_| ((rng() % 16) as usize, (rng() % 16) as usize, rng() % 9 + 1))
        .collect();
    let mut reference = [1u64; 16];
    for &(a, b, c) in &ops {
        reference[a] = reference[a].wrapping_add(c.wrapping_mul(reference[b]));
    }
    for q in [
        Quark::new_centralized(4),
        Quark::new_on_xkaapi(Arc::new(Runtime::new(4))),
    ] {
        let cells: Vec<Mutex<u64>> = (0..16).map(|_| Mutex::new(1)).collect();
        q.session(|ctx| {
            use xkaapi::quark::QuarkDep;
            for &(a, b, c) in &ops {
                let cells = &cells;
                if a == b {
                    ctx.insert_task([QuarkDep::inout(a as u64)], move |_| {
                        let mut g = cells[a].lock().unwrap();
                        let v = *g;
                        *g = v.wrapping_add(c.wrapping_mul(v));
                    });
                } else {
                    ctx.insert_task(
                        [QuarkDep::inout(a as u64), QuarkDep::input(b as u64)],
                        move |_| {
                            let vb = *cells[b].lock().unwrap();
                            let mut ga = cells[a].lock().unwrap();
                            *ga = ga.wrapping_add(c.wrapping_mul(vb));
                        },
                    );
                }
            }
        });
        for i in 0..16 {
            assert_eq!(*cells[i].lock().unwrap(), reference[i], "cell {i}");
        }
    }
}

#[test]
fn simulator_bounds_on_real_cholesky_dag() {
    use xkaapi::sim::{simulate_dag, DagPolicy, Platform, SimTask, TaskDag};
    // Build the DAG of a real tiled Cholesky and check classic bounds.
    let ops = xkaapi::linalg::cholesky_ops(12);
    let tasks: Vec<SimTask> = ops
        .iter()
        .map(|_| SimTask {
            work_ns: 100_000,
            bytes: 0,
        })
        .collect();
    let acc: Vec<Vec<(u64, bool)>> = ops.iter().map(|o| o.accesses()).collect();
    let dag = TaskDag::from_accesses(tasks, &acc);
    let pol = DagPolicy::WorkStealing {
        steal_ns: 200,
        task_overhead_ns: 20,
        aggregation: true,
        spawn_ns: 0,
    };
    let t1 = simulate_dag(&Platform::magny_cours(1), &dag, &pol, 1).makespan_ns;
    assert!(t1 >= dag.total_work_ns());
    for cores in [4usize, 16, 48] {
        let tp = simulate_dag(&Platform::magny_cours(cores), &dag, &pol, 1).makespan_ns;
        assert!(
            tp >= dag.total_work_ns() / cores as u64,
            "work bound at {cores}"
        );
        assert!(tp >= dag.critical_path_ns(), "span bound at {cores}");
        assert!(tp <= t1, "no slowdown from parallelism at {cores}");
    }
}

#[test]
fn runtime_survives_mixed_paradigm_stress() {
    // Interleave dataflow chains, fork-join trees and adaptive loops on one
    // runtime instance, repeatedly.
    use xkaapi::core::Shared;
    let rt = Runtime::new(4);
    for round in 0..5u64 {
        let h = Shared::new(round);
        rt.scope(|ctx| {
            for _ in 0..20 {
                let hw = h.clone();
                ctx.spawn([h.exclusive()], move |t| *t.write(&hw) += 1);
            }
        });
        assert_eq!(*h.get(), round + 20);

        let f = rt.scope(|ctx| {
            fn fib(c: &mut xkaapi::core::Ctx<'_>, n: u64) -> u64 {
                if n < 2 {
                    n
                } else {
                    let (a, b) = c.join(|c| fib(c, n - 1), |c| fib(c, n - 2));
                    a + b
                }
            }
            fib(ctx, 15)
        });
        assert_eq!(f, 610);

        let s = rt.foreach_reduce(
            0..10_000,
            None,
            || 0u64,
            |a, i| *a += i as u64,
            |a, b| a + b,
        );
        assert_eq!(s, 49_995_000);
    }
}
