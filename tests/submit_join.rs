//! Integration tests of the injection subsystem (DESIGN.md §4):
//! [`Runtime::submit`] join handles, sharded inject lanes and the
//! admission/backpressure layer.
//!
//! The acceptance gates of ISSUE 4 live here: submit returns before the
//! job runs, concurrent submitters all get their results, a dropped handle
//! does not cancel (or leak) its job, panics propagate at `wait`,
//! `OnFull::Reject` actually rejects at `max_pending`, and submitting from
//! inside a worker runs inline without deadlocking the pool.
//!
//! [`Runtime::submit`]: xkaapi::core::Runtime::submit

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use xkaapi::core::{InjectPolicy, OnFull, Priority, Runtime, Topology};

/// Spin-wait (with yields) until `cond` holds, panicking after `secs`.
fn wait_until(secs: u64, what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::yield_now();
    }
}

/// The ISSUE 4 acceptance gate: `submit` must return *before* the job
/// runs. The job blocks on a gate only the submitting thread opens — and
/// it opens it strictly after `submit` returned, so if submit ran the job
/// synchronously this test would deadlock (caught by the timeout).
#[test]
fn submit_returns_before_the_job_runs() {
    let rt = Runtime::new(2);
    let gate = Arc::new(AtomicBool::new(false));
    let ran = Arc::new(AtomicBool::new(false));
    let (g, r) = (Arc::clone(&gate), Arc::clone(&ran));
    let handle = rt
        .submit(move |_ctx| {
            let deadline = Instant::now() + Duration::from_secs(20);
            while !g.load(Ordering::Acquire) {
                assert!(Instant::now() < deadline, "gate never opened");
                std::thread::yield_now();
            }
            r.store(true, Ordering::Release);
            21u32
        })
        .unwrap();
    // We got here with the job provably not finished: it spins on the gate.
    assert!(!handle.is_done(), "submit must not wait for the job");
    assert!(!ran.load(Ordering::Acquire));
    gate.store(true, Ordering::Release);
    assert_eq!(handle.wait(), 21);
    assert!(ran.load(Ordering::Acquire));
    assert_eq!(rt.stats().jobs_submitted, 1);
}

#[test]
fn try_result_and_is_done_poll_without_blocking() {
    let rt = Runtime::new(2);
    let gate = Arc::new(AtomicBool::new(false));
    let g = Arc::clone(&gate);
    let mut handle = rt
        .submit(move |ctx| {
            while !g.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            ctx.join(|_| 6u64, |_| 7u64)
        })
        .unwrap();
    assert!(!handle.is_done());
    assert_eq!(handle.try_result(), None, "poll while running is None");
    gate.store(true, Ordering::Release);
    wait_until(20, "job completion", || handle.is_done());
    assert_eq!(handle.try_result(), Some((6, 7)));
}

#[test]
fn on_complete_fires_without_any_waiter() {
    let rt = Runtime::new(2);
    let fired = Arc::new(AtomicU64::new(0));
    // Registered before completion: fires from the completing worker.
    let gate = Arc::new(AtomicBool::new(false));
    let g = Arc::clone(&gate);
    let handle = rt
        .submit(move |_ctx| {
            while !g.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            5u32
        })
        .unwrap();
    let f = Arc::clone(&fired);
    handle.on_complete(move || {
        f.fetch_add(1, Ordering::SeqCst);
    });
    gate.store(true, Ordering::Release);
    wait_until(20, "on_complete callback", || {
        fired.load(Ordering::SeqCst) == 1
    });
    // Registered after completion: fires immediately on this thread.
    let f = Arc::clone(&fired);
    handle.on_complete(move || {
        f.fetch_add(10, Ordering::SeqCst);
    });
    assert_eq!(fired.load(Ordering::SeqCst), 11);
    assert_eq!(handle.wait(), 5, "callbacks do not consume the result");
}

/// A panicking `on_complete` callback is contained: it must not unwind
/// through (and kill) the completing worker — the pool stays fully
/// functional afterwards, and later callbacks still fire.
#[test]
fn panicking_on_complete_callback_does_not_kill_the_worker() {
    let rt = Runtime::new(1);
    let gate = Arc::new(AtomicBool::new(false));
    let g = Arc::clone(&gate);
    let handle = rt
        .submit(move |_ctx| {
            while !g.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        })
        .unwrap();
    handle.on_complete(|| panic!("reactor wake failed"));
    let fired = Arc::new(AtomicBool::new(false));
    let f = Arc::clone(&fired);
    handle.on_complete(move || f.store(true, Ordering::SeqCst));
    gate.store(true, Ordering::Release);
    wait_until(20, "callbacks after the panicking one", || {
        fired.load(Ordering::SeqCst)
    });
    // The 1-worker pool survived the callback panic: external scopes (which
    // need a live worker to drain the lane) still complete.
    assert_eq!(rt.scope(|ctx| ctx.join(|_| 3, |_| 4)), (3, 4));
    // Immediate-run path (already-done handle) is contained too.
    handle.on_complete(|| panic!("late wake failed"));
    assert_eq!(rt.submit(|_ctx| 1u32).unwrap().wait(), 1);
}

/// Concurrent submitters on a 2-node modelled topology: every handle
/// resolves to its own submitter's value (no cross-wiring through the
/// sharded lanes), and the per-lane counters account for every queued job.
#[test]
fn concurrent_submitters_all_join() {
    let workers = 4;
    let rt = Arc::new(
        Runtime::builder()
            .workers(workers)
            .topology(Topology::two_level(workers, 2))
            .build(),
    );
    assert_eq!(rt.inject_lane_count(), 2);
    let submitters = 4;
    let per = 64u64;
    let start = Arc::new(Barrier::new(submitters));
    let done: Vec<_> = (0..submitters)
        .map(|s| {
            let rt = Arc::clone(&rt);
            let start = Arc::clone(&start);
            std::thread::spawn(move || {
                start.wait();
                let mut sum = 0u64;
                let mut handles = Vec::new();
                for i in 0..per {
                    let tag = (s as u64) << 32 | i;
                    handles.push(rt.submit(move |ctx| {
                        let (a, b) = ctx.join(move |_| tag, |_| 1u64);
                        a + b
                    }));
                }
                for h in handles {
                    sum += h.unwrap().wait();
                }
                sum
            })
        })
        .collect();
    let expect = |s: u64| -> u64 { (0..per).map(|i| (s << 32 | i) + 1).sum() };
    for (s, t) in done.into_iter().enumerate() {
        assert_eq!(t.join().unwrap(), expect(s as u64));
    }
    let snap = rt.stats();
    assert_eq!(snap.jobs_submitted, submitters as u64 * per);
    assert_eq!(snap.jobs_rejected, 0);
    // Every queued job was drained from some lane, and the drain counters
    // agree with the inject_own_lane/inject_remote_lane classification.
    let lanes = rt.inject_lane_stats();
    let queued: u64 = lanes.iter().map(|l| l.submitted).sum();
    let drained: u64 = lanes.iter().map(|l| l.drained).sum();
    assert_eq!(queued, drained);
    assert_eq!(snap.inject_own_lane + snap.inject_remote_lane, drained);
}

/// Dropping the handle detaches the job: it still runs (the side effect
/// lands) and nothing waits on it.
#[test]
fn dropped_handle_does_not_cancel_the_job() {
    let rt = Runtime::new(2);
    let ran = Arc::new(AtomicU64::new(0));
    for _ in 0..32 {
        let r = Arc::clone(&ran);
        let handle = rt
            .submit(move |_ctx| {
                r.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        drop(handle);
    }
    wait_until(20, "detached jobs to run", || {
        ran.load(Ordering::SeqCst) == 32
    });
    assert_eq!(rt.stats().jobs_submitted, 32);
}

#[test]
fn panic_propagates_at_wait() {
    let rt = Runtime::new(2);
    let handle = rt
        .submit(|_ctx| -> u32 { panic!("boom from a submitted job") })
        .unwrap();
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || handle.wait()))
        .expect_err("the job's panic must re-raise at wait");
    let msg = err
        .downcast_ref::<&str>()
        .copied()
        .map(String::from)
        .or_else(|| err.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(msg.contains("boom"), "unexpected payload: {msg:?}");
    // The pool survives a panicked root job.
    assert_eq!(rt.scope(|ctx| ctx.join(|_| 1, |_| 2)), (1, 2));
}

#[test]
fn panic_propagates_at_try_result() {
    let rt = Runtime::new(2);
    let mut handle = rt.submit(|_ctx| -> u32 { panic!("poll boom") }).unwrap();
    wait_until(20, "panicked job to finish", || handle.is_done());
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || handle.try_result()))
        .expect_err("try_result must re-raise the panic");
    assert!(err
        .downcast_ref::<&str>()
        .is_some_and(|m| m.contains("poll boom")));
}

/// `OnFull::Reject` sheds load at exactly `max_pending` queued jobs, and
/// drains reopen admission.
#[test]
fn reject_policy_rejects_at_max_pending() {
    let cap = 4usize;
    let rt = Runtime::builder()
        .workers(1)
        .inject_policy(InjectPolicy {
            max_pending: cap,
            on_full: OnFull::Reject,
        })
        .build();
    assert_eq!(rt.tunables().inject.max_pending, cap);
    // Occupy the only worker so queued jobs stay pending.
    let gate = Arc::new(AtomicBool::new(false));
    let g = Arc::clone(&gate);
    let busy = rt
        .submit(move |_ctx| {
            while !g.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        })
        .unwrap();
    // The busy job may or may not have been drained from the lane yet;
    // wait until the worker picked it up so `pending` is exactly 0.
    wait_until(20, "busy job to start", || {
        rt.inject_lane_stats()
            .iter()
            .map(|l| l.drained)
            .sum::<u64>()
            == 1
    });
    // Fill the admission window…
    let fillers: Vec<_> = (0..cap)
        .map(|i| rt.submit(move |_ctx| i as u64).unwrap())
        .collect();
    // …and the next submission must be shed, closure dropped, counted.
    for _ in 0..3 {
        assert!(rt.submit(|_ctx| 0u64).is_err(), "cap reached: must reject");
    }
    assert_eq!(rt.stats().jobs_rejected, 3);
    gate.store(true, Ordering::Release);
    busy.wait();
    for (i, h) in fillers.into_iter().enumerate() {
        assert_eq!(h.wait(), i as u64);
    }
    // With the lanes drained, admission is open again.
    assert_eq!(rt.submit(|_ctx| 9u64).unwrap().wait(), 9);
}

/// `OnFull::Block` throttles instead of shedding: a submitter at the cap
/// parks until a worker drains a lane, then proceeds — nothing is lost.
#[test]
fn block_policy_throttles_submitters() {
    let cap = 2usize;
    let rt = Arc::new(
        Runtime::builder()
            .workers(1)
            .inject_policy(InjectPolicy {
                max_pending: cap,
                on_full: OnFull::Block,
            })
            .build(),
    );
    let gate = Arc::new(AtomicBool::new(false));
    let g = Arc::clone(&gate);
    let busy = rt
        .submit(move |_ctx| {
            while !g.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        })
        .unwrap();
    wait_until(20, "busy job to start", || {
        rt.inject_lane_stats()
            .iter()
            .map(|l| l.drained)
            .sum::<u64>()
            == 1
    });
    let done = Arc::new(AtomicU64::new(0));
    let submitter = {
        let (rt, done) = (Arc::clone(&rt), Arc::clone(&done));
        std::thread::spawn(move || {
            let mut handles = Vec::new();
            for i in 0..(cap as u64 + 3) {
                // Beyond the cap this blocks until the worker drains.
                handles.push(rt.submit(move |_ctx| i).unwrap());
                done.fetch_add(1, Ordering::SeqCst);
            }
            handles.into_iter().map(|h| h.wait()).sum::<u64>()
        })
    };
    // The submitter must stall at the cap while the worker is pinned.
    wait_until(20, "submitter to reach the cap", || {
        done.load(Ordering::SeqCst) == cap as u64
    });
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(
        done.load(Ordering::SeqCst),
        cap as u64,
        "submitter got past max_pending while the pool was saturated"
    );
    gate.store(true, Ordering::Release);
    busy.wait();
    assert_eq!(submitter.join().unwrap(), (0..cap as u64 + 3).sum::<u64>());
    assert_eq!(rt.stats().jobs_rejected, 0, "Block never sheds");
}

/// Submitting from inside a worker runs the job inline (like a nested
/// scope): even a 1-worker pool — whose only worker could never both wait
/// on the handle and execute a queued job — cannot deadlock.
#[test]
fn submit_from_inside_a_worker_runs_inline() {
    let rt = Runtime::new(1);
    let out = rt.scope(|_outer| {
        let h = with_current_runtime_submit(&rt);
        assert!(h.is_done(), "worker-context submit completes inline");
        h.wait()
    });
    assert_eq!(out, 720);
    // Inline submissions are still counted (the enclosing scope is the
    // other submission: scope rides the same machinery).
    assert_eq!(rt.stats().jobs_submitted, 2);
}

/// Helper: a worker-context submit of a small fork-join factorial.
fn with_current_runtime_submit(rt: &Runtime) -> xkaapi::core::JoinHandle<u64> {
    rt.submit(|ctx| {
        fn fact(c: &mut xkaapi::core::Ctx<'_>, n: u64) -> u64 {
            if n <= 1 {
                1
            } else {
                let (a, b) = c.join(move |c| fact(c, n - 1), move |_| n);
                a * b
            }
        }
        fact(ctx, 6)
    })
    .unwrap()
}

/// A handle can be waited from inside a worker (passed into a task): the
/// worker helps the pool instead of parking, so this completes even with
/// one worker.
#[test]
fn wait_inside_a_worker_helps_instead_of_parking() {
    let rt = Runtime::new(1);
    let handle = rt.submit(|ctx| ctx.join(|_| 20u64, |_| 22u64)).unwrap();
    let sum = rt.scope(move |_ctx| {
        let (a, b) = handle.wait();
        a + b
    });
    assert_eq!(sum, 42);
}

/// Scope still works through the submit machinery under every admission
/// policy — including `Reject`, where scope admission blocks instead.
#[test]
fn scope_is_never_rejected() {
    let rt = Runtime::builder()
        .workers(2)
        .inject_policy(InjectPolicy {
            max_pending: 1,
            on_full: OnFull::Reject,
        })
        .build();
    for round in 0..64u64 {
        let got = rt.scope(|ctx| ctx.join(move |_| round, |_| 1u64));
        assert_eq!(got, (round, 1));
    }
    assert_eq!(rt.stats().jobs_rejected, 0);
}

/// PR 6 regression gate for the inject fast path: a flood of plain
/// Normal-band submits must never pay the band-major drain walk.
/// `pop_for` short-circuits to the Normal FIFOs while the lanes' pending
/// non-default-band counter is zero; `inject_banded_drains` counts the
/// drains that took the full banded walk, so it must stay at exactly 0
/// for a Normal-only flood — and become non-zero as soon as one
/// non-Normal job makes banded draining necessary.
#[test]
fn normal_only_flood_skips_the_banded_drain_walk() {
    let rt = Runtime::new(2);
    let handles: Vec<_> = (0..256u64)
        .map(|i| rt.submit(move |_| i).expect("admission"))
        .collect();
    let sum: u64 = handles.into_iter().map(|h| h.wait()).sum();
    assert_eq!(sum, 255 * 256 / 2);
    assert_eq!(
        rt.stats().inject_banded_drains,
        0,
        "a Normal-only flood paid the banded drain walk"
    );

    // One High-band job forces the slow path at least once…
    let h = rt
        .task()
        .priority(Priority::High)
        .submit(move |_| 7u64)
        .expect("admission");
    assert_eq!(h.wait(), 7);
    let after_high = rt.stats().inject_banded_drains;
    assert!(
        after_high > 0,
        "a pending High job must route drains through the banded walk"
    );

    // …and once it drained, Normal-only traffic is back on the fast path.
    let handles: Vec<_> = (0..64u64)
        .map(|i| rt.submit(move |_| i).expect("admission"))
        .collect();
    let sum: u64 = handles.into_iter().map(|h| h.wait()).sum();
    assert_eq!(sum, 63 * 64 / 2);
    assert_eq!(
        rt.stats().inject_banded_drains,
        after_high,
        "banded drains kept accruing after the last non-Normal job drained"
    );
}
