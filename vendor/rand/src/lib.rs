//! Offline vendor stub: the subset of the `rand` API this workspace uses —
//! `StdRng::seed_from_u64`, `gen_range` over numeric ranges and `gen_bool` —
//! built on splitmix64 + xoshiro256** (public-domain constructions).
//!
//! The workspace only uses seeded generators for reproducible test-matrix
//! and scenario generation; statistical quality far beyond "well mixed,
//! deterministic per seed" is not required. Note the streams differ from
//! real `rand`'s `StdRng` (which is ChaCha-based): seeds produce different
//! but equally deterministic matrices.

/// Core RNG trait (the subset of `rand::Rng` used here).
pub trait Rng {
    /// Next uniformly-distributed 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range` (numeric, half-open).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: Into<std::ops::Range<T>>,
    {
        let r = range.into();
        T::sample(self, r)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of [0,1]"
        );
        unit_f64(self.next_u64()) < p
    }

    /// Uniform sample of a whole primitive (only `f64` in `[0,1)` and
    /// integer types are supported by this stub).
    fn gen<T: SampleWhole>(&mut self) -> T {
        T::whole(self)
    }
}

/// Map a random word to `[0, 1)` with 53-bit precision.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types uniformly samplable from a half-open range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Sample uniformly from `[range.start, range.end)`.
    fn sample<G: Rng + ?Sized>(g: &mut G, range: std::ops::Range<Self>) -> Self;
}

impl SampleUniform for f64 {
    fn sample<G: Rng + ?Sized>(g: &mut G, range: std::ops::Range<f64>) -> f64 {
        assert!(range.start < range.end, "gen_range: empty f64 range");
        range.start + unit_f64(g.next_u64()) * (range.end - range.start)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample<G: Rng + ?Sized>(g: &mut G, range: std::ops::Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range: empty integer range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Multiply-shift rejection-free mapping; bias is < 2^-64 per
                // sample, irrelevant for test-data generation.
                let x = ((g.next_u64() as u128 * span) >> 64) as i128;
                (range.start as i128 + x) as $t
            }
        }
    )+};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types samplable as a whole (`rng.gen::<T>()`).
pub trait SampleWhole: Sized {
    /// Sample a value covering the type's natural domain.
    fn whole<G: Rng + ?Sized>(g: &mut G) -> Self;
}

impl SampleWhole for f64 {
    fn whole<G: Rng + ?Sized>(g: &mut G) -> f64 {
        unit_f64(g.next_u64())
    }
}

impl SampleWhole for u64 {
    fn whole<G: Rng + ?Sized>(g: &mut G) -> u64 {
        g.next_u64()
    }
}

impl SampleWhole for bool {
    fn whole<G: Rng + ?Sized>(g: &mut G) -> bool {
        g.next_u64() & 1 == 1
    }
}

/// Seedable construction (the subset of `rand::SeedableRng` used here).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// Deterministic generator: xoshiro256** seeded via splitmix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    //! Convenience re-exports matching `rand::prelude`.
    pub use super::rngs::StdRng;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut g = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = g.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i: usize = g.gen_range(3usize..17);
            assert!((3..17).contains(&i));
        }
    }

    #[test]
    fn gen_bool_rate_ballpark() {
        let mut g = StdRng::seed_from_u64(11);
        let hits = (0..40_000).filter(|_| g.gen_bool(0.85)).count();
        let rate = hits as f64 / 40_000.0;
        assert!((rate - 0.85).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn f64_range_covers_span() {
        let mut g = StdRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..1000).map(|_| g.gen_range(0.0..10.0)).collect();
        assert!(samples.iter().any(|&x| x < 2.0));
        assert!(samples.iter().any(|&x| x > 8.0));
    }
}
