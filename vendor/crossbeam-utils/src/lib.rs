//! Offline vendor stub: the subset of `crossbeam-utils` this workspace uses
//! ([`CachePadded`] and [`Backoff`]), implemented from scratch. See
//! `vendor/README.md` for why dependencies are vendored.

/// Pads and aligns a value to (at least) the length of a cache line, so two
/// `CachePadded` values in one array never share a line (no false sharing
/// between per-worker counters).
///
/// 128-byte alignment covers the adjacent-line prefetcher on modern x86 and
/// the 128-byte lines of some AArch64 parts, matching real crossbeam.
#[derive(Default, Debug, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pad `value` to a cache line.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Unwrap the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

const SPIN_LIMIT: u32 = 6;
const YIELD_LIMIT: u32 = 10;

/// Exponential backoff for spin loops: spin with increasing pause counts,
/// then start yielding the thread, signalling (via [`Backoff::is_completed`])
/// when the caller should park instead.
pub struct Backoff {
    step: std::cell::Cell<u32>,
}

impl Backoff {
    /// Fresh backoff state.
    pub fn new() -> Backoff {
        Backoff {
            step: std::cell::Cell::new(0),
        }
    }

    /// Reset after making progress.
    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Back off in a lock-free retry loop (spins only, never yields).
    pub fn spin(&self) {
        for _ in 0..1u32 << self.step.get().min(SPIN_LIMIT) {
            std::hint::spin_loop();
        }
        if self.step.get() <= SPIN_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// Back off while waiting for another thread: spin first, then yield.
    pub fn snooze(&self) {
        if self.step.get() <= SPIN_LIMIT {
            for _ in 0..1u32 << self.step.get() {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if self.step.get() <= YIELD_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// Has backoff escalated far enough that blocking would be better?
    pub fn is_completed(&self) -> bool {
        self.step.get() > YIELD_LIMIT
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff::new()
    }
}

/// `crossbeam::utils`-style module path compatibility.
pub mod utils {
    pub use super::{Backoff, CachePadded};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_padded_is_aligned_and_derefs() {
        let xs: [CachePadded<u64>; 2] = [CachePadded::new(1), CachePadded::new(2)];
        let a = &xs[0] as *const _ as usize;
        let b = &xs[1] as *const _ as usize;
        assert!(b - a >= 128, "adjacent elements share a cache line");
        assert_eq!(*xs[0] + *xs[1], 3);
        assert_eq!(CachePadded::new(7u8).into_inner(), 7);
    }

    #[test]
    fn backoff_escalates_and_resets() {
        let b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..32 {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
        b.spin(); // must not panic or escalate past the spin limit
    }
}
