//! Offline vendor stub: the subset of the `parking_lot` API this workspace
//! uses, implemented over `std::sync`. The container building this repo has
//! no access to a crates.io registry, so the workspace vendors the three
//! tiny dependency surfaces it needs (see `vendor/README.md`).
//!
//! Semantics preserved relative to real `parking_lot`:
//! * `Mutex::lock` returns the guard directly (no poisoning — a panicking
//!   holder does not poison the lock);
//! * `Condvar::wait`/`wait_for` take `&mut MutexGuard` instead of consuming
//!   the guard;
//! * `try_lock` returns `Option<MutexGuard>`.
//!
//! Not preserved: parking_lot's adaptive spinning and word-sized locks. The
//! scheduler only relies on mutual exclusion and condvar wake-ups, not on
//! the performance model of the lock implementation.

use std::sync::{self, TryLockError};
use std::time::Duration;

/// A mutual-exclusion primitive (std-backed, poison-free API).
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard of a [`Mutex`]. The `Option` indirection lets [`Condvar`]
/// temporarily hand the underlying std guard to `std::sync::Condvar::wait`
/// (which consumes and returns it) through an `&mut` borrow.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard vacated")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard vacated")
    }
}

/// Result of a timed condvar wait.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Did the wait end by timeout (rather than a notification)?
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`Mutex`] (parking_lot-style `&mut
/// guard` API over `std::sync::Condvar`).
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard vacated");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Block until notified or `timeout` elapsed.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard vacated");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// A reader-writer lock (std-backed, poison-free API).
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock guarding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(1));
        assert!(r.timed_out());
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(5));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }
}
